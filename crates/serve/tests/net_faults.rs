//! Frontend hardening tests against hostile and broken TCP clients.
//!
//! Each test boots a real listener on an ephemeral port and talks to it
//! over real sockets: oversized frames get one typed `frame_too_large`
//! reply and a disconnect (without the server ever buffering the frame),
//! malformed JSON / truncated frames / binary garbage get typed
//! `bad_request` replies or a clean disconnect — never a panic or a hung
//! handler — and a slow-trickling client is dropped by the read timeout
//! while the server keeps serving everyone else.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_nn::{Activation, Mlp};
use aimts_serve::{BatchPolicy, ModelRegistry, NetPolicy, Server};

fn model() -> &'static FineTuned {
    static MODEL: OnceLock<FineTuned> = OnceLock::new();
    MODEL.get_or_init(|| {
        let repr = 16;
        FineTuned {
            encoder: TsEncoder::new(8, repr, &[1, 2], 99),
            head: Mlp::new(&[repr, 8, 3], Activation::Gelu, 100),
            n_classes: 3,
            train_losses: Vec::new(),
            best_train_accuracy: None,
            health: HealthReport::default(),
        }
    })
}

/// Boot a server + TCP frontend on an ephemeral port.
fn boot(policy: NetPolicy) -> (std::net::SocketAddr, JoinHandle<std::io::Result<u64>>) {
    let registry = ModelRegistry::from_tuned(model(), Executor::Eager, "net-test");
    let server = Arc::new(Server::start(registry, BatchPolicy::default()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || aimts_serve::net::serve_tcp(server, listener, policy));
    (addr, handle)
}

/// A test client with a generous read timeout so a buggy server fails the
/// test instead of hanging it.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("client read timeout");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    fn send_line(&mut self, line: &str) {
        self.send_raw(format!("{line}\n").as_bytes());
    }

    /// Read one reply line; `None` on EOF (server closed the connection).
    fn read_reply(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("client read failed: {e}"),
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send_line(line);
        self.read_reply()
            .expect("server must reply, not disconnect")
    }
}

const VALID: &str =
    r#"{"series": [[0.1, 0.5, -0.2, 0.3, 0.9, -0.4, 0.0, 0.2, 0.7, -0.1, 0.4, 0.6]]}"#;

/// Shut the frontend down via a fresh connection and join the listener.
fn shut_down(addr: std::net::SocketAddr, handle: JoinHandle<std::io::Result<u64>>) {
    let mut c = Client::connect(addr);
    let reply = c.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply, r#"{"ok":true,"drained":true}"#);
    handle
        .join()
        .expect("listener thread must not panic")
        .expect("listener exits cleanly");
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let (addr, handle) = boot(NetPolicy::default());
    let mut c = Client::connect(addr);

    // Invalid JSON.
    let reply = c.roundtrip("this is not json");
    assert!(reply.contains(r#""ok":false"#), "reply: {reply}");
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");

    // Truncated JSON (the newline ends the frame mid-object).
    let reply = c.roundtrip(r#"{"series": [[0.1, 0.2"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");

    // Binary garbage, including invalid UTF-8.
    c.send_raw(&[0xff, 0xfe, 0x00, 0x9f, 0x92, 0x96, b'\n']);
    let reply = c.read_reply().expect("typed reply for binary garbage");
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");

    // Structurally wrong payloads are typed, not fatal.
    let reply = c.roundtrip(r#"{"series": "not an array"}"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");
    let reply = c.roundtrip(r#"{"series": [[1.0, "x"]]}"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");
    let reply = c.roundtrip(r#"{"cmd":"frobnicate"}"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");

    // The same connection still serves real work afterwards.
    let reply = c.roundtrip(VALID);
    assert!(reply.contains(r#""ok":true"#), "reply: {reply}");
    assert!(reply.contains(r#""class":"#), "reply: {reply}");

    shut_down(addr, handle);
}

#[test]
fn oversized_frame_gets_one_typed_reply_then_disconnect() {
    let (addr, handle) = boot(NetPolicy {
        max_frame: 256,
        ..NetPolicy::default()
    });
    let mut c = Client::connect(addr);

    let huge = format!("{{\"series\": [[{}1.0]]}}", "0.5, ".repeat(4_000));
    assert!(huge.len() > 256);
    let reply = c.roundtrip(&huge);
    assert!(
        reply.contains(r#""code":"frame_too_large""#),
        "reply: {reply}"
    );
    assert!(reply.contains("256"), "limit named in reply: {reply}");
    assert!(
        c.read_reply().is_none(),
        "server must disconnect after an oversized frame"
    );

    // The listener is unaffected: a fresh connection serves normally.
    let mut c2 = Client::connect(addr);
    let reply = c2.roundtrip(VALID);
    assert!(reply.contains(r#""ok":true"#), "reply: {reply}");

    shut_down(addr, handle);
}

#[test]
fn slow_client_is_dropped_by_the_read_timeout() {
    let (addr, handle) = boot(NetPolicy {
        read_timeout: Duration::from_millis(200),
        ..NetPolicy::default()
    });

    // Trickle half a frame, then stall past the read timeout: the server
    // must drop us instead of pinning its handler thread forever.
    let mut slow = Client::connect(addr);
    slow.send_raw(br#"{"series": [[0.1, 0.2"#);
    let mut buf = [0u8; 64];
    let mut reader = slow.reader.into_inner();
    match reader.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!(
            "server sent {n} bytes to a half-frame client: {:?}",
            String::from_utf8_lossy(&buf[..n])
        ),
        Err(e) => panic!("expected clean EOF after timeout, got {e}"),
    }

    // Other clients were never blocked by the slow one.
    let mut c = Client::connect(addr);
    let reply = c.roundtrip(VALID);
    assert!(reply.contains(r#""ok":true"#), "reply: {reply}");

    shut_down(addr, handle);
}

#[test]
fn request_options_roundtrip_and_admin_commands_answer() {
    let (addr, handle) = boot(NetPolicy::default());
    let mut c = Client::connect(addr);

    // Options accepted: generous deadline + high priority.
    let reply = c.roundtrip(
        r#"{"series": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]], "deadline_ms": 10000, "priority": "high"}"#,
    );
    assert!(reply.contains(r#""ok":true"#), "reply: {reply}");

    // Unknown model: typed at admission.
    let reply = c.roundtrip(r#"{"series": [[0.1, 0.2, 0.3, 0.4]], "model": "nope"}"#);
    assert!(
        reply.contains(r#""code":"model_not_found""#),
        "reply: {reply}"
    );
    assert!(reply.contains("nope"), "reply names the model: {reply}");

    // Bad option values: typed, not fatal.
    let reply = c.roundtrip(r#"{"series": [[0.1]], "priority": "urgent"}"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");
    let reply = c.roundtrip(r#"{"series": [[0.1]], "deadline_ms": -5}"#);
    assert!(reply.contains(r#""code":"bad_request""#), "reply: {reply}");

    // Expired deadline: typed deadline_exceeded, not a hang.
    let reply = c.roundtrip(r#"{"series": [[0.1, 0.2, 0.3, 0.4]], "deadline_ms": 0}"#);
    assert!(
        reply.contains(r#""code":"deadline_exceeded""#),
        "reply: {reply}"
    );

    // Admin commands.
    let reply = c.roundtrip(r#"{"cmd":"metrics"}"#);
    assert!(reply.contains("received"), "metrics reply: {reply}");
    assert!(
        reply.contains("deadline_exceeded"),
        "metrics reply: {reply}"
    );
    let reply = c.roundtrip(r#"{"cmd":"models"}"#);
    assert!(
        reply.contains(r#""name":"default""#),
        "models reply: {reply}"
    );
    assert!(reply.contains(r#""generation":1"#), "models reply: {reply}");

    shut_down(addr, handle);
}

/// Shutdown over TCP drains in-flight work before confirming, and the
/// listener exits; a second shutdown attempt just fails to connect (or is
/// refused) — no panic, no zombie thread.
#[test]
fn tcp_shutdown_drains_then_exits() {
    let (addr, handle) = boot(NetPolicy::default());
    let mut c = Client::connect(addr);
    for _ in 0..5 {
        let reply = c.roundtrip(VALID);
        assert!(reply.contains(r#""ok":true"#), "reply: {reply}");
    }
    let reply = c.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply, r#"{"ok":true,"drained":true}"#);
    let connections = handle
        .join()
        .expect("listener thread must not panic")
        .expect("listener exits cleanly");
    // At least our client plus the internal wake-up poke were accepted.
    assert!(connections >= 1, "connections: {connections}");
}
