//! Multi-model registry routing: named slots, per-request routing, slot
//! isolation under swap, and typed rejection of unknown models.
//!
//! Correct routing is asserted two ways at once: by *answer* (the served
//! class equals the named model's offline `FineTuned::predict`) and by
//! *provenance* (the response's generation equals the named slot's —
//! slots advance independently, so after swapping one slot the untouched
//! slot still answers at its own generation).

use std::sync::atomic::{AtomicU64, Ordering};

use aimts::{Executor, FineTuned, HealthReport, TsEncoder};
use aimts_data::{MultiSeries, Sample, Split};
use aimts_nn::{Activation, Mlp};
use aimts_serve::{BatchPolicy, ModelRegistry, ServeError, Server, SubmitOptions, DEFAULT_MODEL};

const N_CLASSES: usize = 4;

fn make_model(seed: u64) -> FineTuned {
    let repr = 16;
    FineTuned {
        encoder: TsEncoder::new(8, repr, &[1, 2], seed),
        head: Mlp::new(&[repr, 8, N_CLASSES], Activation::Gelu, seed + 1),
        n_classes: N_CLASSES,
        train_losses: Vec::new(),
        best_train_accuracy: None,
        health: HealthReport::default(),
    }
}

fn sample(t: usize, seed: u64) -> MultiSeries {
    vec![(0..t)
        .map(|i| (seed as f32 * 0.61 + i as f32 * 0.3).sin())
        .collect()]
}

fn offline_classes(model: &FineTuned, samples: &[MultiSeries]) -> Vec<usize> {
    let split = Split {
        samples: samples
            .iter()
            .map(|vars| Sample {
                vars: vars.clone(),
                label: 0,
            })
            .collect(),
    };
    model.predict(&split)
}

/// A registry with two named slots, `alpha` (seed 1) and `beta` (seed 2),
/// and no default slot.
fn two_slot_registry() -> ModelRegistry {
    let registry = ModelRegistry::empty(Executor::Eager);
    registry.register_tuned("alpha", &make_model(1), "alpha-v1");
    registry.register_tuned("beta", &make_model(2), "beta-v1");
    registry
}

#[test]
fn requests_route_to_the_named_slot_bitwise() {
    let samples: Vec<MultiSeries> = (0..8).map(|i| sample(16, i)).collect();
    let want_alpha = offline_classes(&make_model(1), &samples);
    let want_beta = offline_classes(&make_model(2), &samples);

    let server = Server::start(two_slot_registry(), BatchPolicy::default());
    for (i, s) in samples.iter().enumerate() {
        let a = server
            .classify_with(s.clone(), SubmitOptions::for_model("alpha"))
            .expect("alpha classify");
        let b = server
            .classify_with(s.clone(), SubmitOptions::for_model("beta"))
            .expect("beta classify");
        assert_eq!(a.class, want_alpha[i], "alpha answer diverged at {i}");
        assert_eq!(b.class, want_beta[i], "beta answer diverged at {i}");
        assert_eq!(a.generation, 1);
        assert_eq!(b.generation, 1);
    }
    server.shutdown();
    assert_eq!(server.metrics().completed, 16);
}

#[test]
fn unknown_model_rejects_typed_at_admission() {
    let server = Server::start(two_slot_registry(), BatchPolicy::default());
    match server.submit_with(sample(16, 0), SubmitOptions::for_model("ghost")) {
        Err(ServeError::ModelNotFound(name)) => assert_eq!(name, "ghost"),
        other => panic!("unknown model must reject typed, got {other:?}"),
    }
    // With no `default` slot registered, the unnamed route is equally a
    // typed miss — not a panic.
    match server.submit(sample(16, 0)) {
        Err(ServeError::ModelNotFound(name)) => assert_eq!(name, DEFAULT_MODEL),
        other => panic!("missing default slot must reject typed, got {other:?}"),
    }
    server.shutdown();
    let snap = server.metrics();
    assert_eq!(snap.model_not_found, 2);
    assert_eq!(snap.completed, 0);
}

#[test]
fn swapping_one_slot_leaves_the_other_untouched() {
    let samples: Vec<MultiSeries> = (0..6).map(|i| sample(16, 10 + i)).collect();
    let want_alpha = offline_classes(&make_model(1), &samples);
    let want_beta_v2 = offline_classes(&make_model(7), &samples);

    let server = Server::start(two_slot_registry(), BatchPolicy::default());
    let generation = server
        .registry()
        .register_tuned("beta", &make_model(7), "beta-v2");
    assert_eq!(generation, 2);
    assert_eq!(server.registry().generation_named(Some("beta")), 2);
    assert_eq!(server.registry().generation_named(Some("alpha")), 1);

    for (i, s) in samples.iter().enumerate() {
        let a = server
            .classify_with(s.clone(), SubmitOptions::for_model("alpha"))
            .expect("alpha classify");
        assert_eq!(a.generation, 1, "untouched slot must stay at gen 1");
        assert_eq!(a.class, want_alpha[i]);
        let b = server
            .classify_with(s.clone(), SubmitOptions::for_model("beta"))
            .expect("beta classify");
        assert_eq!(b.generation, 2, "swapped slot must serve gen 2");
        assert_eq!(b.class, want_beta_v2[i]);
    }
    server.shutdown();
}

#[test]
fn swap_named_from_bundle_creates_a_fresh_slot() {
    let dir = std::env::temp_dir().join("aimts_multi_model");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("canary.aimts");
    make_model(5).save_bundle(&path).expect("save bundle");
    let samples: Vec<MultiSeries> = (0..4).map(|i| sample(16, 20 + i)).collect();
    let want = offline_classes(&FineTuned::load_bundle(&path).expect("reload"), &samples);

    let server = Server::start(
        ModelRegistry::from_tuned(&make_model(1), Executor::Eager, "boot"),
        BatchPolicy::default(),
    );
    let generation = server
        .swap_named_from_bundle("canary", &path)
        .expect("bundle swap into a new slot");
    assert_eq!(generation, 1, "a fresh slot boots at generation 1");

    let names: Vec<String> = server
        .registry()
        .models()
        .into_iter()
        .map(|(name, _, _)| name)
        .collect();
    assert_eq!(names, vec!["canary".to_string(), DEFAULT_MODEL.to_string()]);

    for (i, s) in samples.iter().enumerate() {
        let r = server
            .classify_with(s.clone(), SubmitOptions::for_model("canary"))
            .expect("canary classify");
        assert_eq!(r.class, want[i], "canary must serve the bundle's model");
        assert_eq!(r.generation, 1);
    }
    server.shutdown();
    assert_eq!(server.metrics().swaps, 1);
}

/// Interleaved traffic for two slots from concurrent clients: the
/// assembler splits mixed batches by model, and every answer matches the
/// named model bitwise — no cross-slot bleed, no lost requests.
#[test]
fn interleaved_multi_model_load_routes_every_request() {
    let n_each = 60u64;
    let samples: Vec<MultiSeries> = (0..n_each).map(|i| sample(16, i)).collect();
    let want_alpha = offline_classes(&make_model(1), &samples);
    let want_beta = offline_classes(&make_model(2), &samples);

    let server = Server::start(
        two_slot_registry(),
        BatchPolicy {
            max_batch: 16,
            ..BatchPolicy::default()
        },
    );
    let mismatches = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for (name, want) in [("alpha", &want_alpha), ("beta", &want_beta)] {
            let server = &server;
            let samples = &samples;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let pending: Vec<_> = samples
                    .iter()
                    .map(|s| {
                        server
                            .submit_with(s.clone(), SubmitOptions::for_model(name))
                            .expect("submit")
                    })
                    .collect();
                for (i, p) in pending.into_iter().enumerate() {
                    let r = p.wait().expect("answered");
                    if r.class != want[i] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    server.shutdown();
    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "cross-slot bleed");
    let snap = server.metrics();
    assert_eq!(snap.completed, 2 * n_each);
    assert!(snap.accounted_for(0), "{snap:?}");
}
