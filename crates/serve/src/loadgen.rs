//! Synthetic load generator: many client threads, 10⁴–10⁶ queued
//! requests, per-outcome accounting, a JSON report under
//! `bench_results/`.
//!
//! The generator distinguishes every overload outcome so saturation runs
//! are measurable: `completed` (answered with a class), `shed`
//! (admission rejected: overloaded or breaker open), `deadline_exceeded`,
//! `inference_failures`, `errors` (everything else typed), and `lost` —
//! requests that were *accepted* but never answered. `lost` must be zero
//! under any schedule, including saturation and shutdown races; the CLI
//! and the chaos suite both fail a run with `lost > 0`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use aimts_data::MultiSeries;
use serde::Serialize;

use crate::batcher::Pending;
use crate::deadline::{Deadline, SubmitOptions};
use crate::server::Server;
use crate::ServeError;

/// Load-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Per-request relative deadline, if any.
    pub deadline_ms: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 10_000,
            clients: 4,
            deadline_ms: None,
        }
    }
}

/// The recorded outcome of one load run (flat so the vendored serde shim
/// serializes it directly).
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    pub requests: u64,
    pub clients: u64,
    pub completed: u64,
    /// Admission-shed submissions (overloaded / circuit open).
    pub shed: u64,
    /// Requests answered `DeadlineExceeded` (admitted or at admission).
    pub deadline_exceeded: u64,
    /// Requests answered `InferenceFailed` (poison isolation).
    pub inference_failures: u64,
    /// Other typed rejections (bad request, model not found, closed at
    /// submit time).
    pub errors: u64,
    /// Accepted requests that never got an answer — the drain contract
    /// makes this zero always.
    pub lost: u64,
    pub breaker_trips: u64,
    pub max_batch: u64,
    pub max_delay_us: u64,
    pub queue_cap: u64,
    pub wall_s: f64,
    pub throughput_rps: f64,
    pub batches: u64,
    pub mean_batch: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_latency_us: u64,
    pub mean_latency_us: f64,
    pub queue_p50_us: u64,
    pub queue_p99_us: u64,
    pub generations_observed: u64,
}

/// Drive `cfg.requests` classification requests through `server` from
/// `cfg.clients` threads, drawing inputs round-robin from `pool`.
///
/// Every accepted request's response is awaited; the function returns
/// only after the last outcome (or server shutdown). Panics if `pool` is
/// empty.
pub fn run_loadgen(server: &Server, pool: &[MultiSeries], cfg: &LoadgenConfig) -> LoadReport {
    assert!(!pool.is_empty(), "loadgen needs a non-empty request pool");
    assert!(cfg.requests >= 1 && cfg.clients >= 1);
    let completed = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let inference_failures = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let lost = AtomicU64::new(0);
    let generations = AtomicU64::new(0);
    // aimts-lint: allow(A003, the load generator measures real latency distributions; determinism is not a goal here)
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let completed = &completed;
            let shed = &shed;
            let deadline_exceeded = &deadline_exceeded;
            let inference_failures = &inference_failures;
            let errors = &errors;
            let lost = &lost;
            let generations = &generations;
            scope.spawn(move || {
                // Client c sends requests c, c + clients, c + 2*clients, ...
                let mut pending: Vec<Pending> = Vec::new();
                let mut i = client;
                while i < cfg.requests {
                    let opts = SubmitOptions {
                        deadline: cfg.deadline_ms.map(Deadline::in_ms),
                        ..SubmitOptions::default()
                    };
                    match server.submit_with(pool[i % pool.len()].clone(), opts) {
                        Ok(p) => pending.push(p),
                        Err(ServeError::Overloaded { .. } | ServeError::CircuitOpen { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::DeadlineExceeded) => {
                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += cfg.clients;
                }
                let mut seen_gen = 0u64;
                for p in pending {
                    match p.wait() {
                        Ok(resp) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            seen_gen = seen_gen.max(resp.generation);
                        }
                        Err(ServeError::DeadlineExceeded) => {
                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::InferenceFailed(_)) => {
                            inference_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        // An accepted request answered `Closed` (or any
                        // other post-admission error) was dropped: the
                        // drain contract failed.
                        Err(_) => {
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                generations.fetch_max(seen_gen, Ordering::Relaxed);
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let snap = server.metrics();
    let policy = server.policy();
    LoadReport {
        requests: cfg.requests as u64,
        clients: cfg.clients as u64,
        completed: completed.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        inference_failures: inference_failures.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        lost: lost.load(Ordering::Relaxed),
        breaker_trips: snap.breaker_trips,
        max_batch: policy.max_batch as u64,
        max_delay_us: policy.max_delay.as_micros() as u64,
        queue_cap: policy.queue_cap as u64,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            completed.load(Ordering::Relaxed) as f64 / wall_s
        } else {
            0.0
        },
        batches: snap.batches,
        mean_batch: snap.mean_batch,
        p50_us: snap.latency.p50_us,
        p95_us: snap.latency.p95_us,
        p99_us: snap.latency.p99_us,
        max_latency_us: snap.latency.max_us,
        mean_latency_us: snap.latency.mean_us,
        queue_p50_us: snap.queue_wait.p50_us,
        queue_p99_us: snap.queue_wait.p99_us,
        generations_observed: generations.load(Ordering::Relaxed),
    }
}

/// Write `report` to `bench_results/serve_load.json` (pretty JSON, same
/// location convention as the bench harness) and return the path.
pub fn write_report(report: &LoadReport) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    let path = dir.join("serve_load.json");
    let json = serde_json::to_string_pretty(report).expect("serialize load report");
    std::fs::write(&path, json).expect("write serve_load.json");
    path
}
