//! Circuit breaker: trip after K consecutive panicking flushes, recover
//! through a half-open probe.
//!
//! The breaker watches *flush outcomes* (one per assembled batch). A
//! clean flush resets the failure streak; a flush whose guarded forward
//! panicked — even if bisection then salvaged every batch-mate — counts
//! one failure. After `threshold` consecutive failures the breaker
//! **opens**: admission rejects every request with a typed
//! [`CircuitOpen`](crate::ServeError::CircuitOpen) carrying the remaining
//! cooldown. Once the cooldown elapses the next admission moves it to
//! **half-open**: requests flow again, and the very next flush outcome
//! decides — success closes the breaker, another panic re-opens it and
//! restarts the cooldown.
//!
//! State transitions are mirrored into [`Metrics`] (`breaker_state`,
//! `breaker_trips`) so operators can see trips without scraping logs.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Metrics;

/// Breaker state machine: `Closed → Open → HalfOpen → {Closed, Open}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: admission flows, failures are being counted.
    Closed,
    /// Tripped: admission is rejected until the cooldown elapses.
    Open,
    /// Probing: admission flows; the next flush outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding (metrics gauge): 0 closed, 1 open, 2 half-open.
    pub fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    fn from_u8(v: u8) -> BreakerState {
        match v {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

/// The breaker itself; shared between the admission path (checks) and
/// the inference workers (outcome reports).
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: AtomicU8,
    consecutive: AtomicU32,
    opened_at: Mutex<Option<Instant>>,
    metrics: Arc<Metrics>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// panicking flushes and stays open for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration, metrics: Arc<Metrics>) -> CircuitBreaker {
        assert!(threshold >= 1, "breaker threshold must be >= 1");
        CircuitBreaker {
            threshold,
            cooldown,
            state: AtomicU8::new(BreakerState::Closed.as_u8()),
            consecutive: AtomicU32::new(0),
            opened_at: Mutex::new(None),
            metrics,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Admission check: `Ok` when closed or half-open. When open, moves
    /// to half-open once the cooldown has elapsed (admitting this
    /// request as the probe); otherwise returns the remaining cooldown.
    pub fn admit(&self, now: Instant) -> Result<(), u64> {
        if self.state() != BreakerState::Open {
            return Ok(());
        }
        let opened = *lock(&self.opened_at);
        let Some(opened) = opened else {
            // Open with no timestamp cannot happen in practice; fail safe
            // by probing.
            self.set_state(BreakerState::HalfOpen);
            return Ok(());
        };
        let elapsed = now.saturating_duration_since(opened);
        if elapsed >= self.cooldown {
            self.set_state(BreakerState::HalfOpen);
            Ok(())
        } else {
            Err((self.cooldown - elapsed).as_millis().max(1) as u64)
        }
    }

    /// A flush completed without panicking: reset the streak and close.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Release);
        if self.state() != BreakerState::Closed {
            self.set_state(BreakerState::Closed);
        }
    }

    /// A flush panicked (whole batch or any bisected fragment): extend
    /// the streak; trip when it reaches the threshold, and re-open
    /// immediately when probing half-open.
    pub fn record_failure(&self, now: Instant) {
        let streak = self.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
        let probing = self.state() == BreakerState::HalfOpen;
        if probing || streak >= self.threshold {
            *lock(&self.opened_at) = Some(now);
            if self.state() != BreakerState::Open {
                self.metrics.record_breaker_trip();
            }
            self.set_state(BreakerState::Open);
        }
    }

    fn set_state(&self, s: BreakerState) {
        self.state.store(s.as_u8(), Ordering::Release);
        self.metrics.set_breaker_state(s.as_u8());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(
            threshold,
            Duration::from_millis(cooldown_ms),
            Arc::new(Metrics::default()),
        )
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker(3, 100);
        let now = Instant::now();
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.metrics.snapshot().breaker_trips, 1);
        // Within the cooldown: rejected with a positive hint.
        let retry = b.admit(now + Duration::from_millis(10)).unwrap_err();
        assert!((1..=100).contains(&retry), "retry hint {retry}");
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(2, 100);
        let now = Instant::now();
        b.record_failure(now);
        b.record_success();
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed, "streak must have reset");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = breaker(1, 50);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapsed: the next admission probes.
        assert!(b.admit(t0 + Duration::from_millis(60)).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);

        // Probe that fails re-opens immediately and restarts the cooldown.
        b.record_failure(t0);
        assert!(b.admit(t0 + Duration::from_millis(60)).is_ok());
        let t1 = t0 + Duration::from_millis(61);
        b.record_failure(t1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit(t1 + Duration::from_millis(10)).is_err());
        // Three Open transitions: boot failure, post-reset failure,
        // failed probe.
        assert_eq!(b.metrics.snapshot().breaker_trips, 3);
    }
}
