//! Hardened JSON-lines TCP frontend.
//!
//! One JSON object per line, one line per reply:
//!
//! ```text
//! → {"series": [[0.1, 0.2, ...], ...], "deadline_ms": 50, "priority": "low", "model": "canary"}
//! ← {"ok":true,"id":7,"class":1,"generation":1,"batch_size":3,"queue_us":412,"total_us":1903}
//! → {"cmd":"metrics"}
//! ← {...MetricsSnapshot...}
//! → {"cmd":"models"}
//! ← {"ok":true,"models":[{"name":"default","generation":1,"source":"..."}]}
//! → {"cmd":"swap","path":"/path/to/model.aimts","model":"canary"}
//! ← {"ok":true,"generation":2}
//! → {"cmd":"shutdown"}
//! ← {"ok":true,"drained":true}      (after the drain completes)
//! ```
//!
//! Error replies are typed: `{"ok":false,"code":"overloaded","error":"...",
//! "retry_after_ms":12}` — `code` is [`ServeError::code`], so clients
//! dispatch on a stable string instead of parsing prose.
//!
//! The frontend is hardened against hostile or broken clients
//! ([`NetPolicy`]): per-connection read/write timeouts bound how long a
//! slow client can pin its handler thread, and frames are read through a
//! bounded scanner — a line longer than `max_frame` yields one typed
//! `frame_too_large` reply and a disconnect *without ever buffering the
//! oversized frame*. Malformed JSON, truncated frames, and binary
//! garbage produce typed errors or a clean disconnect, never a panic or
//! a hung thread (`tests/net_faults.rs`).
//!
//! Each connection gets its own thread; requests on one connection are
//! answered in order (pipelining across connections still micro-batches,
//! because every line lands in the shared queue).

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use aimts_data::MultiSeries;
use serde_json::Value;

use crate::deadline::{Deadline, Priority, SubmitOptions};
use crate::server::Server;
use crate::ServeError;

/// Frontend hardening limits. Zero durations disable the corresponding
/// timeout (not recommended outside tests).
#[derive(Debug, Clone, Copy)]
pub struct NetPolicy {
    /// A connection idle (or trickling one frame) longer than this is
    /// dropped.
    pub read_timeout: Duration,
    /// A client not draining its replies for this long is dropped.
    pub write_timeout: Duration,
    /// Maximum request line length in bytes; longer frames get a typed
    /// `frame_too_large` reply and the connection is closed.
    pub max_frame: usize,
}

impl Default for NetPolicy {
    fn default() -> Self {
        NetPolicy {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: 1 << 20,
        }
    }
}

fn timeout_opt(d: Duration) -> Option<Duration> {
    if d.is_zero() {
        None
    } else {
        Some(d)
    }
}

/// Accept connections on `listener` and serve until a client sends
/// `{"cmd":"shutdown"}`. Returns the number of connections handled.
pub fn serve_tcp(
    server: Arc<Server>,
    listener: TcpListener,
    policy: NetPolicy,
) -> std::io::Result<u64> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    // Clones of every live connection so drain can sever idle clients
    // instead of waiting out their read timeouts. Handlers remove (and
    // thereby drop) their own clone on exit, so a connection the handler
    // closed really closes — the clone must not hold the socket open.
    let live: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
    fn lock(m: &Mutex<Vec<(u64, TcpStream)>>) -> std::sync::MutexGuard<'_, Vec<(u64, TcpStream)>> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    let mut connections = 0u64;
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = stream?;
        connections += 1;
        let id = connections;
        if let Ok(clone) = stream.try_clone() {
            lock(&live).push((id, clone));
        }
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        handlers.push(std::thread::spawn(move || {
            let shutdown_requested = handle_connection(&server, stream, policy);
            lock(&live).retain(|(cid, _)| *cid != id);
            if shutdown_requested {
                // Set the flag, then poke the listener with a throwaway
                // connection so `incoming` observes it.
                stop.store(true, Ordering::Release);
                TcpStream::connect(local).ok();
            }
        }));
    }
    // Sever the still-live connections (the shutdown requester already
    // got its reply) so parked handler reads return immediately, then
    // join.
    for (_, s) in lock(&live).drain(..) {
        s.shutdown(std::net::Shutdown::Both).ok();
    }
    for h in handlers {
        h.join().ok();
    }
    Ok(connections)
}

/// One framing outcome from the bounded line scanner.
enum Frame {
    Line(String),
    /// The line exceeded `max_frame`; its bytes were discarded, not kept.
    TooLarge,
    /// EOF, timeout, or I/O error — nothing further to read.
    Disconnect,
}

/// Read one `\n`-terminated frame without ever holding more than
/// `max_frame` bytes of it. Oversized frames are consumed (so the typed
/// reply lands on a clean stream position) but never buffered.
fn read_frame(reader: &mut BufReader<TcpStream>, max_frame: usize) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            // EOF — a truncated trailing frame is a clean disconnect.
            Ok([]) => return Frame::Disconnect,
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // WouldBlock/TimedOut (slow client) and hard errors alike.
            Err(_) => return Frame::Disconnect,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized {
                    line.extend_from_slice(&chunk[..pos]);
                    oversized = line.len() > max_frame;
                }
                reader.consume(pos + 1);
                return if oversized {
                    Frame::TooLarge
                } else {
                    // Binary garbage decodes lossily and then fails JSON
                    // parsing with a typed reply — no panic on invalid UTF-8.
                    Frame::Line(String::from_utf8_lossy(&line).into_owned())
                };
            }
            None => {
                let len = chunk.len();
                if !oversized {
                    line.extend_from_slice(chunk);
                    if line.len() > max_frame {
                        oversized = true;
                        line = Vec::new();
                    }
                }
                reader.consume(len);
            }
        }
    }
}

/// Serve one connection; returns true when the client asked for shutdown.
fn handle_connection(server: &Server, stream: TcpStream, policy: NetPolicy) -> bool {
    if stream
        .set_read_timeout(timeout_opt(policy.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(timeout_opt(policy.write_timeout))
            .is_err()
    {
        return false;
    }
    let Ok(write_half) = stream.try_clone() else {
        return false;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, policy.max_frame) {
            Frame::Line(line) => line,
            Frame::TooLarge => {
                // One typed reply, then drop the connection: a client
                // that overflows the limit once will likely do it again.
                let reply = error_reply(&ServeError::FrameTooLarge {
                    limit: policy.max_frame,
                });
                writeln!(writer, "{reply}")
                    .and_then(|()| writer.flush())
                    .ok();
                return false;
            }
            Frame::Disconnect => return false,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = dispatch(server, &line);
        if shutdown {
            // Drain first so `ok` means every accepted request was
            // answered, then confirm (idempotent under racing clients).
            server.shutdown();
            writeln!(writer, "{reply}")
                .and_then(|()| writer.flush())
                .ok();
            return true;
        }
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return false;
        }
    }
}

/// Execute one request line; returns (reply line, shutdown?).
fn dispatch(server: &Server, line: &str) -> (String, bool) {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (bad_request(&format!("invalid JSON: {e}")), false),
    };
    match value.get("cmd").and_then(Value::as_str) {
        Some("metrics") => {
            let snap = server.metrics();
            match serde_json::to_string(&snap) {
                Ok(json) => (json, false),
                Err(e) => (bad_request(&format!("metrics: {e}")), false),
            }
        }
        Some("models") => {
            let entries: Vec<String> = server
                .registry()
                .models()
                .into_iter()
                .map(|(name, generation, source)| {
                    format!(
                        "{{\"name\":{},\"generation\":{generation},\"source\":{}}}",
                        json_str(&name),
                        json_str(&source)
                    )
                })
                .collect();
            (
                format!("{{\"ok\":true,\"models\":[{}]}}", entries.join(",")),
                false,
            )
        }
        Some("swap") => {
            let Some(path) = value.get("path").and_then(Value::as_str) else {
                return (bad_request("swap needs a \"path\" field"), false);
            };
            let result = match value.get("model").and_then(Value::as_str) {
                Some(name) => server.swap_named_from_bundle(name, &PathBuf::from(path)),
                None => server.swap_from_bundle(&PathBuf::from(path)),
            };
            match result {
                Ok(generation) => (
                    format!("{{\"ok\":true,\"generation\":{generation}}}"),
                    false,
                ),
                Err(e) => (error_reply(&e), false),
            }
        }
        Some("shutdown") => ("{\"ok\":true,\"drained\":true}".to_string(), true),
        Some(other) => (bad_request(&format!("unknown cmd `{other}`")), false),
        None => {
            let opts = match parse_options(&value) {
                Ok(opts) => opts,
                Err(why) => return (bad_request(&why), false),
            };
            match parse_series(&value) {
                Ok(series) => match server.classify_with(series, opts) {
                    Ok(r) => (
                        format!(
                            "{{\"ok\":true,\"id\":{},\"class\":{},\"generation\":{},\"batch_size\":{},\"queue_us\":{},\"total_us\":{}}}",
                            r.id, r.class, r.generation, r.batch_size, r.queue_us, r.total_us
                        ),
                        false,
                    ),
                    Err(e) => (error_reply(&e), false),
                },
                Err(why) => (bad_request(&why), false),
            }
        }
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).unwrap_or_else(|_| "\"\"".to_string())
}

/// Typed error reply: stable `code`, human-readable `error`, and a
/// `retry_after_ms` hint when the rejection is retryable.
fn error_reply(e: &ServeError) -> String {
    match e.retry_after_ms() {
        Some(ms) => format!(
            "{{\"ok\":false,\"code\":\"{}\",\"error\":{},\"retry_after_ms\":{ms}}}",
            e.code(),
            json_str(&e.to_string())
        ),
        None => format!(
            "{{\"ok\":false,\"code\":\"{}\",\"error\":{}}}",
            e.code(),
            json_str(&e.to_string())
        ),
    }
}

fn bad_request(why: &str) -> String {
    error_reply(&ServeError::BadRequest(why.to_string()))
}

/// Extract optional `deadline_ms` / `priority` / `model` request fields.
fn parse_options(value: &Value) -> Result<SubmitOptions, String> {
    let mut opts = SubmitOptions::default();
    if let Some(v) = value.get("deadline_ms") {
        let ms = v
            .as_u64()
            .ok_or("\"deadline_ms\" must be a non-negative integer")?;
        opts.deadline = Some(Deadline::in_ms(ms));
    }
    if let Some(v) = value.get("priority") {
        let s = v.as_str().ok_or("\"priority\" must be a string")?;
        opts.priority = Priority::parse(s)?;
    }
    if let Some(v) = value.get("model") {
        let s = v.as_str().ok_or("\"model\" must be a string")?;
        opts.model = Some(s.to_string());
    }
    Ok(opts)
}

/// Extract `{"series": [[...], ...]}` into a [`MultiSeries`].
fn parse_series(value: &Value) -> Result<MultiSeries, String> {
    let vars = value
        .get("series")
        .and_then(Value::as_array)
        .ok_or("request needs a \"series\" array of per-variable arrays")?;
    let mut out: MultiSeries = Vec::with_capacity(vars.len());
    for (m, var) in vars.iter().enumerate() {
        let xs = var
            .as_array()
            .ok_or_else(|| format!("series[{m}] is not an array"))?;
        let mut v = Vec::with_capacity(xs.len());
        for (i, x) in xs.iter().enumerate() {
            v.push(
                x.as_f64()
                    .ok_or_else(|| format!("series[{m}][{i}] is not a number"))?
                    as f32,
            );
        }
        out.push(v);
    }
    Ok(out)
}
