//! Minimal JSON-lines TCP frontend.
//!
//! One JSON object per line, one line per reply:
//!
//! ```text
//! → {"series": [[0.1, 0.2, ...], ...]}
//! ← {"ok":true,"id":7,"class":1,"generation":1,"batch_size":3,"queue_us":412,"total_us":1903}
//! → {"cmd":"metrics"}
//! ← {...MetricsSnapshot...}
//! → {"cmd":"swap","path":"/path/to/model.aimts"}
//! ← {"ok":true,"generation":2}
//! → {"cmd":"shutdown"}
//! ← {"ok":true}           (then the listener stops accepting)
//! ```
//!
//! Each connection gets its own thread; requests on one connection are
//! answered in order (pipelining across connections still micro-batches,
//! because every line lands in the shared queue). The frontend is a demo
//! surface for `aimts-cli serve` — the conformance and load suites drive
//! the in-process [`Server`] API directly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aimts_data::MultiSeries;
use serde_json::Value;

use crate::server::Server;

/// Accept connections on `listener` and serve until a client sends
/// `{"cmd":"shutdown"}`. Returns the number of connections handled.
pub fn serve_tcp(server: Arc<Server>, listener: TcpListener) -> std::io::Result<u64> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = 0u64;
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = stream?;
        connections += 1;
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        handlers.push(std::thread::spawn(move || {
            if handle_connection(&server, stream) {
                // Shutdown requested: set the flag, then poke the
                // listener with a throwaway connection so `incoming`
                // observes it.
                stop.store(true, Ordering::Release);
                TcpStream::connect(local).ok();
            }
        }));
    }
    for h in handlers {
        h.join().ok();
    }
    Ok(connections)
}

/// Serve one connection; returns true when the client asked for shutdown.
fn handle_connection(server: &Server, stream: TcpStream) -> bool {
    let Ok(write_half) = stream.try_clone() else {
        return false;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = dispatch(server, &line);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

/// Execute one request line; returns (reply line, shutdown?).
fn dispatch(server: &Server, line: &str) -> (String, bool) {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (error_reply(&format!("invalid JSON: {e}")), false),
    };
    match value.get("cmd").and_then(Value::as_str) {
        Some("metrics") => {
            let snap = server.metrics();
            match serde_json::to_string(&snap) {
                Ok(json) => (json, false),
                Err(e) => (error_reply(&format!("metrics: {e}")), false),
            }
        }
        Some("swap") => {
            let Some(path) = value.get("path").and_then(Value::as_str) else {
                return (error_reply("swap needs a \"path\" field"), false);
            };
            match server.swap_from_bundle(&PathBuf::from(path)) {
                Ok(generation) => (format!("{{\"ok\":true,\"generation\":{generation}}}"), false),
                Err(e) => (error_reply(&e.to_string()), false),
            }
        }
        Some("shutdown") => ("{\"ok\":true}".to_string(), true),
        Some(other) => (error_reply(&format!("unknown cmd `{other}`")), false),
        None => match parse_series(&value) {
            Ok(series) => match server.classify(series) {
                Ok(r) => (
                    format!(
                        "{{\"ok\":true,\"id\":{},\"class\":{},\"generation\":{},\"batch_size\":{},\"queue_us\":{},\"total_us\":{}}}",
                        r.id, r.class, r.generation, r.batch_size, r.queue_us, r.total_us
                    ),
                    false,
                ),
                Err(e) => (error_reply(&e.to_string()), false),
            },
            Err(why) => (error_reply(&why), false),
        },
    }
}

fn error_reply(why: &str) -> String {
    // Route through the JSON writer so arbitrary error text is escaped.
    let msg = serde_json::to_string(why).unwrap_or_else(|_| "\"error\"".to_string());
    format!("{{\"ok\":false,\"error\":{msg}}}")
}

/// Extract `{"series": [[...], ...]}` into a [`MultiSeries`].
fn parse_series(value: &Value) -> Result<MultiSeries, String> {
    let vars = value
        .get("series")
        .and_then(Value::as_array)
        .ok_or("request needs a \"series\" array of per-variable arrays")?;
    let mut out: MultiSeries = Vec::with_capacity(vars.len());
    for (m, var) in vars.iter().enumerate() {
        let xs = var
            .as_array()
            .ok_or_else(|| format!("series[{m}] is not an array"))?;
        let mut v = Vec::with_capacity(xs.len());
        for (i, x) in xs.iter().enumerate() {
            v.push(
                x.as_f64()
                    .ok_or_else(|| format!("series[{m}][{i}] is not a number"))?
                    as f32,
            );
        }
        out.push(v);
    }
    Ok(out)
}
