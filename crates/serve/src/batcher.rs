//! The micro-batcher: a bounded request queue drained into adaptive
//! batches.
//!
//! Requests enter through a `sync_channel` whose capacity bounds memory
//! and back-pressures producers. One batcher thread blocks on the first
//! request, then keeps collecting until either `max_batch` requests are in
//! hand or `max_delay` has elapsed since the batch opened — the classic
//! latency/throughput trade: a lone request waits at most `max_delay`, a
//! burst fills batches to `max_batch` with no added wait.
//!
//! Each flush grabs the registry's current model **once**, so every
//! request in a batch is answered by one model generation, and a hot swap
//! mid-flush only affects later batches. Responses travel over
//! per-request channels: exactly one response per accepted request, in
//! whatever order the client awaits them — the batcher cannot drop,
//! duplicate, or cross-wire a response (`tests/batch_props.rs`).

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aimts_data::MultiSeries;

use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::ServeError;

/// Flush policy for the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Flush as soon as a batch holds this many requests.
    pub max_batch: usize,
    /// Flush an incomplete batch this long after it opened.
    pub max_delay: Duration,
    /// Bounded queue capacity; submitters block (back-pressure) when full.
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 4096,
        }
    }
}

impl BatchPolicy {
    /// Panic early on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "max_batch must be >= 1");
        assert!(self.queue_cap >= 1, "queue_cap must be >= 1");
    }
}

/// One queued classification request.
pub(crate) struct Request {
    pub id: u64,
    pub series: MultiSeries,
    pub enqueued: Instant,
    pub reply: Sender<Response>,
}

/// The served answer for one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Server-assigned request id (echoed to the submitter's [`Pending`]).
    pub id: u64,
    /// Predicted class index.
    pub class: usize,
    /// Generation of the model version that answered.
    pub generation: u64,
    /// How many requests shared this request's batch.
    pub batch_size: usize,
    /// Submit → batch-dequeue wait.
    pub queue_us: u64,
    /// Submit → response-ready latency.
    pub total_us: u64,
}

/// Handle to one in-flight request.
pub struct Pending {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<Response>,
}

impl Pending {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response arrives. Returns [`ServeError::Closed`]
    /// only if the server shut down before answering.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// Batcher-thread main loop: drain `rx` into batches per `policy` until
/// every submitter handle is dropped and the queue is empty.
pub(crate) fn run(
    rx: Receiver<Request>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    policy: BatchPolicy,
) {
    loop {
        // Block for the batch-opening request.
        let first = match rx.recv() {
            Ok(r) => r,
            Err(_) => return, // all senders gone, queue fully drained
        };
        metrics.record_dequeued();
        // aimts-lint: allow(A003, batching deadlines are wall-clock by definition; serving is not deterministic-replay code)
        let deadline = Instant::now() + policy.max_delay;
        let mut batch = vec![first];
        while batch.len() < policy.max_batch {
            // aimts-lint: allow(A003, deadline arithmetic for the max_delay flush)
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => {
                    metrics.record_dequeued();
                    batch.push(r);
                }
                Err(RecvTimeoutError::Timeout) => break,
                // Senders gone: flush what we have; the outer recv ends
                // the loop next iteration.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        flush(batch, &registry, &metrics);
    }
}

/// Classify one batch against the current model version and answer every
/// request. Infallible by construction: requests are shape-validated at
/// submit, and `classify_mixed` groups heterogeneous shapes internally.
fn flush(batch: Vec<Request>, registry: &ModelRegistry, metrics: &Metrics) {
    let version = registry.current();
    // aimts-lint: allow(A003, queue-wait latency measurement)
    let dequeued = Instant::now();
    let refs: Vec<&MultiSeries> = batch.iter().map(|r| &r.series).collect();
    let classes = version.model.classify_mixed(&refs);
    // aimts-lint: allow(A003, end-to-end latency measurement)
    let done = Instant::now();
    let batch_size = batch.len();
    for (req, class) in batch.into_iter().zip(classes) {
        let queue_us = dequeued.duration_since(req.enqueued).as_micros() as u64;
        let total_us = done.duration_since(req.enqueued).as_micros() as u64;
        metrics.record_completion(queue_us, total_us);
        // A submitter that dropped its Pending forfeits the answer; the
        // request itself still counted as completed.
        req.reply
            .send(Response {
                id: req.id,
                class,
                generation: version.generation,
                batch_size,
                queue_us,
                total_us,
            })
            .ok();
    }
    metrics.record_batch();
}
