//! The micro-batcher: an admission-controlled bounded queue drained into
//! adaptive batches executed on an inference worker pool.
//!
//! Requests enter through [`AdmissionQueue`], a condvar-backed bounded
//! queue that — unlike the old `sync_channel` — supports *try-admit*
//! semantics: a full queue rejects with a typed
//! [`Overloaded`](crate::ServeError::Overloaded) instead of blocking the
//! producer forever, and the queue depth is observable for watermark
//! shedding. One assembler thread blocks on the first request, then
//! keeps collecting until either `max_batch` requests are in hand or
//! `max_delay` has elapsed since the batch opened — the classic
//! latency/throughput trade: a lone request waits at most `max_delay`, a
//! burst fills batches to `max_batch` with no added wait.
//!
//! Each assembled batch is grouped by model name, resolves its registry
//! slot **once** (so every request in a group is answered by one model
//! generation; a hot swap mid-flush only affects later batches), and is
//! handed to a small pool of inference workers over a bounded channel —
//! `max_inflight_batches` caps the pipeline depth, so a slow model backs
//! pressure up into the queue and from there into admission shedding
//! rather than unbounded memory.
//!
//! The forward pass runs under `catch_unwind` behind the circuit
//! breaker: a panicking batch is **bisected** to isolate the poison
//! request(s) — batch-mates of a NaN-bomb payload are answered normally,
//! only the poison request gets a typed
//! [`InferenceFailed`](crate::ServeError::InferenceFailed). Deadlines
//! are enforced at assembly, before the forward pass, and after it (see
//! [`deadline`](crate::deadline)). Responses travel over per-request
//! channels: exactly one response per accepted request, in whatever
//! order the client awaits them — the batcher cannot drop, duplicate, or
//! cross-wire a response (`tests/batch_props.rs`), even across drain.

// Requests stay boxed end to end (queue → batch → model group →
// bisection split): the box is allocated once at admission and every
// later stage moves a pointer, not the ~100-byte request.
#![allow(clippy::vec_box)]

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::{Duration, Instant};

use aimts::infer::InferenceModel;
use aimts_data::MultiSeries;

use crate::breaker::CircuitBreaker;
use crate::chaos::ChaosPlan;
use crate::metrics::Metrics;
use crate::registry::{ModelRegistry, ModelVersion};
use crate::ServeError;

/// Flush, admission, and fault-tolerance policy for the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Flush as soon as a batch holds this many requests.
    pub max_batch: usize,
    /// Flush an incomplete batch this long after it opened.
    pub max_delay: Duration,
    /// Bounded queue capacity; admission sheds (typed `Overloaded`)
    /// when full.
    pub queue_cap: usize,
    /// How long a `Normal`/`High` priority submit may block waiting for
    /// queue space before it is shed. `Low` priority never blocks.
    pub admission_timeout: Duration,
    /// Deadline applied to requests that do not carry one; `None`
    /// means no deadline.
    pub default_deadline: Option<Duration>,
    /// Assembled batches allowed in the worker pipeline (queued or
    /// executing) before assembly stalls and back-pressure reaches
    /// admission.
    pub max_inflight_batches: usize,
    /// Inference worker threads draining assembled batches.
    pub inference_threads: usize,
    /// Consecutive panicking flushes that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before a half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 4096,
            admission_timeout: Duration::from_secs(1),
            default_deadline: None,
            max_inflight_batches: 2,
            inference_threads: 1,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
        }
    }
}

impl BatchPolicy {
    /// Panic early on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "max_batch must be >= 1");
        assert!(self.queue_cap >= 1, "queue_cap must be >= 1");
        assert!(
            self.max_inflight_batches >= 1,
            "max_inflight_batches must be >= 1"
        );
        assert!(
            self.inference_threads >= 1,
            "inference_threads must be >= 1"
        );
        assert!(
            self.breaker_threshold >= 1,
            "breaker_threshold must be >= 1"
        );
    }

    /// Queue depth at which `Low` priority work starts being shed
    /// (3/4 of capacity, at least 1).
    pub fn low_watermark(&self) -> usize {
        (self.queue_cap * 3 / 4).max(1)
    }
}

/// One queued classification request.
pub(crate) struct Request {
    pub id: u64,
    pub series: MultiSeries,
    pub model: Option<String>,
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    pub reply: Sender<Result<Response, ServeError>>,
}

/// The served answer for one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Server-assigned request id (echoed to the submitter's [`Pending`]).
    pub id: u64,
    /// Predicted class index.
    pub class: usize,
    /// Generation of the model version that answered.
    pub generation: u64,
    /// How many requests shared this request's batch (model group).
    pub batch_size: usize,
    /// Submit → batch-dequeue wait.
    pub queue_us: u64,
    /// Submit → response-ready latency.
    pub total_us: u64,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Pending {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<Result<Response, ServeError>>,
}

impl Pending {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the outcome arrives: `Ok` with the response, or the
    /// typed error that answered this request (`DeadlineExceeded`,
    /// `InferenceFailed`, `ModelNotFound`, ...). [`ServeError::Closed`]
    /// means the server shut down before answering — which the drain
    /// contract makes unreachable for accepted requests.
    pub fn wait(self) -> Result<Response, ServeError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::Closed),
        }
    }
}

// ---------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------

/// Why a push was refused. Both variants hand the rejected request back
/// to the caller, so ownership of the responder handle is explicit: the
/// queue either admitted the request or never touched it (the caller
/// answers synchronously). A010 checks this protocol statically.
pub(crate) enum PushReject {
    /// Queue at capacity for the whole timeout; depth at rejection.
    Full(usize, Box<Request>),
    /// The queue is closed (server draining/shut down).
    Closed(Box<Request>),
}

/// Result of a timed pop.
pub(crate) enum Pop {
    Got(Box<Request>),
    TimedOut,
    Closed,
}

struct QueueInner {
    q: VecDeque<Box<Request>>,
    closed: bool,
}

/// Condvar-backed bounded MPSC queue with try/timed admission and
/// observable depth. Close-then-drain: after [`AdmissionQueue::close`],
/// pushes fail with [`PushReject::Closed`] but pops keep returning
/// queued requests until empty — the drain contract's foundation.
pub(crate) struct AdmissionQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Received/dequeued are recorded under the queue mutex so the
    /// depth gauge can never underflow on a push/pop race.
    metrics: Arc<Metrics>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

fn wait_timeout<'a, T>(
    cv: &Condvar,
    g: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(g, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

impl AdmissionQueue {
    pub fn new(cap: usize, metrics: Arc<Metrics>) -> AdmissionQueue {
        AdmissionQueue {
            cap,
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            metrics,
        }
    }

    /// Current depth (queued, not yet assembled).
    pub fn depth(&self) -> usize {
        lock(&self.inner).q.len()
    }

    /// Push, waiting up to `timeout` for space. `Duration::ZERO` is a
    /// pure try-admit.
    pub fn push_within(&self, req: Box<Request>, timeout: Duration) -> Result<(), PushReject> {
        let mut g = lock(&self.inner);
        // aimts-lint: allow(A003, admission timeout is wall-clock by definition; serving is not deterministic-replay code)
        let deadline = Instant::now() + timeout;
        loop {
            if g.closed {
                return Err(PushReject::Closed(req));
            }
            if g.q.len() < self.cap {
                g.q.push_back(req);
                self.metrics.record_received();
                self.not_empty.notify_one();
                return Ok(());
            }
            // aimts-lint: allow(A003, the admission timeout is a real-time SLA, not replayed state; wall clock is the spec)
            let now = Instant::now();
            if now >= deadline {
                return Err(PushReject::Full(g.q.len(), req));
            }
            let (g2, _) = wait_timeout(&self.not_full, g, deadline - now);
            g = g2;
        }
    }

    /// Block until a request or close-and-empty (`None`).
    pub fn pop_wait(&self) -> Option<Box<Request>> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(r) = g.q.pop_front() {
                self.metrics.record_dequeued();
                self.not_full.notify_one();
                return Some(r);
            }
            if g.closed {
                return None;
            }
            g = wait(&self.not_empty, g);
        }
    }

    /// Pop, waiting at most until `until`.
    pub fn pop_until(&self, until: Instant) -> Pop {
        let mut g = lock(&self.inner);
        loop {
            if let Some(r) = g.q.pop_front() {
                self.metrics.record_dequeued();
                self.not_full.notify_one();
                return Pop::Got(r);
            }
            if g.closed {
                return Pop::Closed;
            }
            // aimts-lint: allow(A003, the flush deadline is a real-time SLA, not replayed state; wall clock is the spec)
            let now = Instant::now();
            if now >= until {
                return Pop::TimedOut;
            }
            let (g2, _) = wait_timeout(&self.not_empty, g, until - now);
            g = g2;
        }
    }

    /// Stop admission; queued requests keep draining through pops.
    pub fn close(&self) {
        let mut g = lock(&self.inner);
        g.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------

/// One model-homogeneous batch headed for an inference worker.
pub(crate) struct Assembled {
    pub version: Arc<ModelVersion>,
    pub requests: Vec<Box<Request>>,
    /// Global flush index (chaos schedules key off it).
    pub flush: u64,
}

/// Assembler-thread main loop: drain the admission queue into batches
/// per `policy`, group by model, resolve registry slots, and hand the
/// batches to the worker pool — until the queue is closed and empty.
pub(crate) fn run_assembler(
    queue: Arc<AdmissionQueue>,
    batches: SyncSender<Assembled>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    policy: BatchPolicy,
) {
    let mut flush_counter = 0u64;
    loop {
        // Block for the batch-opening request.
        let Some(first_req) = queue.pop_wait() else {
            return; // closed and fully drained
        };
        // aimts-lint: allow(A003, batching deadlines are wall-clock by definition; serving is not deterministic-replay code)
        let flush_deadline = Instant::now() + policy.max_delay;
        let mut batch = Vec::with_capacity(policy.max_batch);
        admit_to_batch(first_req, &mut batch, &metrics);
        while batch.len() < policy.max_batch {
            // aimts-lint: allow(A003, max_delay bounds real queueing latency; wall clock is the spec, nothing is replayed)
            let now = Instant::now();
            if now >= flush_deadline {
                break;
            }
            match queue.pop_until(flush_deadline) {
                Pop::Got(req) => admit_to_batch(req, &mut batch, &metrics),
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        if batch.is_empty() {
            continue; // every collected request had already expired
        }
        for (name, requests) in group_by_model(batch) {
            match registry.current_named(name.as_deref()) {
                Ok(version) => {
                    let assembled = Assembled {
                        version,
                        requests,
                        flush: flush_counter,
                    };
                    flush_counter += 1;
                    metrics.inflight_inc();
                    if batches.send(assembled).is_err() {
                        // Workers gone: only reachable if the pool died
                        // unexpectedly; fail every request typed, never hang.
                        return;
                    }
                }
                Err(_) => {
                    // The slot vanished (or never existed) between
                    // admission and assembly: answer typed, never panic.
                    let slot = name.clone().unwrap_or_default();
                    for req in requests {
                        metrics.record_model_not_found();
                        req.reply
                            .send(Err(ServeError::ModelNotFound(slot.clone())))
                            .ok();
                    }
                }
            }
        }
    }
}

/// Assembly-time deadline check: expired requests are answered
/// immediately and never reach a batch.
fn admit_to_batch(req: Box<Request>, batch: &mut Vec<Box<Request>>, metrics: &Metrics) {
    // aimts-lint: allow(A003, shedding expired work needs the real clock; inference results never feed training replay)
    let now = Instant::now();
    if req.deadline.is_some_and(|d| now >= d) {
        let total_us = now.duration_since(req.enqueued).as_micros() as u64;
        metrics.record_deadline_exceeded(total_us);
        req.reply.send(Err(ServeError::DeadlineExceeded)).ok();
        return;
    }
    batch.push(req);
}

/// Partition a batch by target model, preserving first-seen group order
/// and input order within each group.
fn group_by_model(batch: Vec<Box<Request>>) -> Vec<(Option<String>, Vec<Box<Request>>)> {
    let mut groups: Vec<(Option<String>, Vec<Box<Request>>)> = Vec::new();
    for req in batch {
        match groups.iter_mut().find(|(name, _)| *name == req.model) {
            Some((_, members)) => members.push(req),
            None => groups.push((req.model.clone(), vec![req])),
        }
    }
    groups
}

// ---------------------------------------------------------------------
// Inference workers
// ---------------------------------------------------------------------

/// Worker-thread main loop: execute assembled batches until the
/// assembler drops the channel and it drains empty.
pub(crate) fn run_worker(
    batches: Arc<Mutex<Receiver<Assembled>>>,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
    chaos: Arc<ChaosPlan>,
) {
    loop {
        // Hold the receiver lock only while waiting; execution runs
        // unlocked so workers overlap on distinct batches.
        let assembled = {
            let rx = lock(&batches);
            // aimts-lint: allow(A008, the receiver mutex only serializes idle workers parked on recv; no other thread ever takes it, so holding it across the wait cannot deadlock)
            rx.recv()
        };
        match assembled {
            Ok(b) => execute(b, &metrics, &breaker, &chaos),
            Err(_) => return,
        }
    }
}

/// Classify one batch and answer every request — with chaos injection,
/// deadline enforcement, panic containment, and poison isolation.
fn execute(b: Assembled, metrics: &Metrics, breaker: &CircuitBreaker, chaos: &ChaosPlan) {
    if chaos.spikes(b.flush) {
        std::thread::sleep(chaos.spike);
    }
    // Pre-forward deadline check: the batch may have waited in the
    // in-flight channel; expired work is shed before the forward pass.
    // aimts-lint: allow(A003, shedding expired work needs the real clock; inference results never feed training replay)
    let now = Instant::now();
    let mut live = Vec::with_capacity(b.requests.len());
    for req in b.requests {
        if req.deadline.is_some_and(|d| now >= d) {
            let total_us = now.duration_since(req.enqueued).as_micros() as u64;
            metrics.record_deadline_exceeded(total_us);
            req.reply.send(Err(ServeError::DeadlineExceeded)).ok();
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        metrics.inflight_dec();
        return;
    }

    // aimts-lint: allow(A003, latency metrics measure real elapsed time by definition and affect no model state)
    let dequeued = Instant::now();
    let refs: Vec<&MultiSeries> = live.iter().map(|r| &r.series).collect();
    let outcome = classify_isolated(&b.version.model, &refs, chaos.panics(b.flush));
    // aimts-lint: allow(A003, latency metrics measure real elapsed time by definition and affect no model state)
    let done = Instant::now();
    if outcome.panicked {
        breaker.record_failure(done);
    } else {
        breaker.record_success();
    }

    let batch_size = live.len();
    for (req, verdict) in live.into_iter().zip(outcome.classes) {
        let queue_us = dequeued.duration_since(req.enqueued).as_micros() as u64;
        let total_us = done.duration_since(req.enqueued).as_micros() as u64;
        match verdict {
            // Post-inference deadline check: an answer computed after
            // its deadline is reported as such — the client already
            // gave up on it.
            Ok(_) if req.deadline.is_some_and(|d| done >= d) => {
                metrics.record_deadline_exceeded(total_us);
                req.reply.send(Err(ServeError::DeadlineExceeded)).ok();
            }
            Ok(class) => {
                metrics.record_completion(queue_us, total_us);
                // A submitter that dropped its Pending forfeits the
                // answer; the request itself still counted as completed.
                req.reply
                    .send(Ok(Response {
                        id: req.id,
                        class,
                        generation: b.version.generation,
                        batch_size,
                        queue_us,
                        total_us,
                    }))
                    .ok();
            }
            Err(()) => {
                metrics.record_inference_failure(total_us);
                req.reply
                    .send(Err(ServeError::InferenceFailed(
                        "inference panicked on this request (isolated by bisection)".to_string(),
                    )))
                    .ok();
            }
        }
    }
    metrics.record_batch();
    metrics.inflight_dec();
}

/// Per-request classification verdicts plus whether any forward panicked.
struct IsolatedOutcome {
    classes: Vec<Result<usize, ()>>,
    panicked: bool,
}

/// Run the guarded forward; on panic, bisect to isolate the poison
/// request(s) so batch-mates are still answered. `inject_panic` forces
/// the *top-level* attempt to panic (chaos flush injection) — bisection
/// retries run clean, so a transient whole-batch panic is survivable.
fn classify_isolated(
    model: &InferenceModel,
    refs: &[&MultiSeries],
    inject_panic: bool,
) -> IsolatedOutcome {
    match guarded_classify(model, refs, inject_panic) {
        Ok(classes) => IsolatedOutcome {
            classes: classes.into_iter().map(Ok).collect(),
            panicked: inject_panic,
        },
        Err(()) => {
            if refs.len() == 1 {
                return IsolatedOutcome {
                    classes: vec![Err(())],
                    panicked: true,
                };
            }
            let mid = refs.len() / 2;
            let left = classify_isolated(model, &refs[..mid], false);
            let right = classify_isolated(model, &refs[mid..], false);
            let mut classes = left.classes;
            classes.extend(right.classes);
            IsolatedOutcome {
                classes,
                panicked: true,
            }
        }
    }
}

/// One `catch_unwind`-guarded forward pass. `AssertUnwindSafe` is sound:
/// the model's only interior mutability is its poison-tolerant plan
/// cache, and a panicking batch never publishes partial results.
fn guarded_classify(
    model: &InferenceModel,
    refs: &[&MultiSeries],
    inject_panic: bool,
) -> Result<Vec<usize>, ()> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        assert!(!inject_panic, "chaos: injected flush panic");
        model.classify_mixed(refs)
    }))
    .map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_validate_and_expose_watermark() {
        let p = BatchPolicy::default();
        p.validate();
        assert_eq!(p.low_watermark(), 4096 * 3 / 4);
        assert_eq!(
            BatchPolicy {
                queue_cap: 1,
                ..BatchPolicy::default()
            }
            .low_watermark(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "inference_threads")]
    fn zero_workers_is_rejected() {
        BatchPolicy {
            inference_threads: 0,
            ..BatchPolicy::default()
        }
        .validate();
    }

    #[test]
    fn admission_queue_try_full_closed() {
        fn req(id: u64) -> Box<Request> {
            let (reply, _rx) = std::sync::mpsc::channel();
            Box::new(Request {
                id,
                series: vec![vec![0.0; 4]],
                model: None,
                deadline: None,
                enqueued: Instant::now(),
                reply,
            })
        }
        let q = AdmissionQueue::new(2, Arc::new(Metrics::default()));
        assert!(q.push_within(req(1), Duration::ZERO).is_ok());
        assert!(q.push_within(req(2), Duration::ZERO).is_ok());
        assert_eq!(q.depth(), 2);
        match q.push_within(req(3), Duration::ZERO) {
            Err(PushReject::Full(depth, rejected)) => {
                assert_eq!(depth, 2);
                // The rejected request comes back so the caller still
                // owns the responder handle.
                assert_eq!(rejected.id, 3);
            }
            _ => panic!("full queue must reject"),
        }
        // Draining frees capacity; close-then-drain yields the rest.
        assert_eq!(q.pop_wait().map(|r| r.id), Some(1));
        assert!(q.push_within(req(3), Duration::ZERO).is_ok());
        q.close();
        assert!(matches!(
            q.push_within(req(4), Duration::ZERO),
            Err(PushReject::Closed(_))
        ));
        assert_eq!(q.pop_wait().map(|r| r.id), Some(2));
        assert_eq!(q.pop_wait().map(|r| r.id), Some(3));
        assert!(q.pop_wait().is_none());
        assert!(matches!(
            q.pop_until(Instant::now() + Duration::from_millis(1)),
            Pop::Closed
        ));
    }

    #[test]
    fn group_by_model_preserves_order() {
        fn req(id: u64, model: Option<&str>) -> Box<Request> {
            let (reply, _rx) = std::sync::mpsc::channel();
            Box::new(Request {
                id,
                series: vec![vec![0.0; 4]],
                model: model.map(str::to_string),
                deadline: None,
                enqueued: Instant::now(),
                reply,
            })
        }
        let groups = group_by_model(vec![
            req(1, None),
            req(2, Some("a")),
            req(3, None),
            req(4, Some("a")),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, None);
        assert_eq!(
            groups[0].1.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(groups[1].0.as_deref(), Some("a"));
        assert_eq!(
            groups[1].1.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }
}
