//! Versioned model registry with hot atomic swap.
//!
//! The registry holds exactly one *current* [`ModelVersion`] behind an
//! `RwLock<Arc<_>>` (ArcSwap-style): readers take a shared lock just long
//! enough to clone the `Arc` — a pointer copy — and then execute entirely
//! against their own immutable handle. A swap validates the incoming
//! bundle *completely* before taking the write lock, so the flip itself is
//! O(1) and a defective bundle can never dislodge a healthy model:
//! validation errors surface as typed [`ServeError::Checkpoint`] values
//! while the old version keeps serving, and batches already holding the
//! old `Arc` finish on it untouched.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use aimts::infer::InferenceModel;
use aimts::{Executor, FineTuned};

use crate::ServeError;

/// One immutable, generation-stamped serving model.
pub struct ModelVersion {
    /// Monotone swap counter: 1 for the boot model, +1 per successful swap.
    pub generation: u64,
    /// Where the model came from (bundle path or an in-process label).
    pub source: String,
    /// The frozen, lock-free classifier.
    pub model: InferenceModel,
}

/// The registry: one current version, atomically replaceable.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
    generation: AtomicU64,
    executor: Executor,
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ModelRegistry {
    /// Boot the registry from an in-process fine-tuned model (generation 1).
    pub fn from_tuned(tuned: &FineTuned, executor: Executor, source: &str) -> Self {
        let version = Arc::new(ModelVersion {
            generation: 1,
            source: source.to_string(),
            model: tuned.freeze(executor),
        });
        ModelRegistry {
            current: RwLock::new(version),
            generation: AtomicU64::new(1),
            executor,
        }
    }

    /// Boot the registry from a serving bundle on disk (generation 1).
    pub fn from_bundle(path: &Path, executor: Executor) -> Result<Self, ServeError> {
        let tuned = FineTuned::load_bundle(path)?;
        Ok(Self::from_tuned(
            &tuned,
            executor,
            &path.display().to_string(),
        ))
    }

    /// The current version: a pointer flip away from the hot path.
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&read_lock(&self.current))
    }

    /// Generation of the current version.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Hot-swap to the bundle at `path`.
    ///
    /// The bundle is loaded, checksum-verified, and frozen *before* the
    /// write lock is taken; any defect returns a typed error and leaves
    /// the current version untouched. On success the new generation number
    /// is returned and subsequent [`ModelRegistry::current`] calls observe
    /// the new model; batches that already hold the old `Arc` finish on it.
    pub fn swap_from_bundle(&self, path: &Path) -> Result<u64, ServeError> {
        let tuned = FineTuned::load_bundle(path)?;
        Ok(self.install(tuned.freeze(self.executor), &path.display().to_string()))
    }

    /// Hot-swap to an in-process fine-tuned model (e.g. freshly re-trained).
    pub fn swap_tuned(&self, tuned: &FineTuned, source: &str) -> u64 {
        self.install(tuned.freeze(self.executor), source)
    }

    fn install(&self, model: InferenceModel, source: &str) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let version = Arc::new(ModelVersion {
            generation,
            source: source.to_string(),
            model,
        });
        *write_lock(&self.current) = version;
        generation
    }
}
