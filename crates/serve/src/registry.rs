//! Versioned multi-model registry with hot atomic swap.
//!
//! The registry holds any number of *named slots* (requests route by
//! model name; `None` routes to [`DEFAULT_MODEL`]). Each slot holds
//! exactly one *current* [`ModelVersion`] behind an `RwLock<Arc<_>>`
//! (ArcSwap-style): readers take a shared lock just long enough to clone
//! the `Arc` — a pointer copy — and then execute entirely against their
//! own immutable handle. A swap validates the incoming bundle
//! *completely* before taking the write lock, so the flip itself is O(1)
//! and a defective bundle can never dislodge a healthy model: validation
//! errors surface as typed [`ServeError::Checkpoint`] values while the
//! old version keeps serving, and batches already holding the old `Arc`
//! finish on it untouched. Requests naming a slot that does not exist
//! get a typed [`ServeError::ModelNotFound`], never a panic.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use aimts::infer::InferenceModel;
use aimts::{Executor, FineTuned};
use aimts_data::MultiSeries;

use crate::ServeError;

/// The slot requests route to when they do not name a model.
pub const DEFAULT_MODEL: &str = "default";

/// A pre-classify hook installed on every model this registry freezes
/// (the chaos suite's poison-isolation seam; `None` in production).
pub type InferHook = Arc<dyn Fn(&[&MultiSeries]) + Send + Sync>;

/// One immutable, generation-stamped serving model.
pub struct ModelVersion {
    /// The slot this version serves under.
    pub name: String,
    /// Monotone per-slot swap counter: 1 for the slot's boot model, +1
    /// per successful swap of that slot.
    pub generation: u64,
    /// Where the model came from (bundle path or an in-process label).
    pub source: String,
    /// The frozen, lock-free classifier.
    pub model: InferenceModel,
}

/// One named slot: its current version and its generation counter.
struct Slot {
    current: RwLock<Arc<ModelVersion>>,
    generation: AtomicU64,
}

/// The registry: named slots, each atomically replaceable.
pub struct ModelRegistry {
    slots: RwLock<BTreeMap<String, Arc<Slot>>>,
    executor: Executor,
    hook: Option<InferHook>,
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ModelRegistry {
    /// An empty registry (no slots yet; every request is `ModelNotFound`
    /// until a model is registered).
    pub fn empty(executor: Executor) -> Self {
        ModelRegistry {
            slots: RwLock::new(BTreeMap::new()),
            executor,
            hook: None,
        }
    }

    /// Boot the registry from an in-process fine-tuned model installed
    /// into the [`DEFAULT_MODEL`] slot (generation 1).
    pub fn from_tuned(tuned: &FineTuned, executor: Executor, source: &str) -> Self {
        let reg = Self::empty(executor);
        reg.register_tuned(DEFAULT_MODEL, tuned, source);
        reg
    }

    /// Boot the registry from a serving bundle on disk into the
    /// [`DEFAULT_MODEL`] slot (generation 1).
    pub fn from_bundle(path: &Path, executor: Executor) -> Result<Self, ServeError> {
        let reg = Self::empty(executor);
        reg.register_bundle(DEFAULT_MODEL, path)?;
        Ok(reg)
    }

    /// Install a pre-classify hook applied to every model frozen from
    /// now on (chaos test seam). Call before registering models.
    pub fn with_infer_hook(mut self, hook: InferHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The executor models in this registry classify with.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// The current version of the [`DEFAULT_MODEL`] slot. Panics if the
    /// registry was built [`empty`](ModelRegistry::empty) and nothing was
    /// registered — use [`current_named`](ModelRegistry::current_named)
    /// for a typed error instead.
    pub fn current(&self) -> Arc<ModelVersion> {
        match self.current_named(None) {
            Ok(v) => v,
            Err(_) => panic!("registry has no `{DEFAULT_MODEL}` slot"),
        }
    }

    /// The current version of the named slot (`None` = default), or a
    /// typed [`ServeError::ModelNotFound`].
    pub fn current_named(&self, name: Option<&str>) -> Result<Arc<ModelVersion>, ServeError> {
        let name = name.unwrap_or(DEFAULT_MODEL);
        let slot = {
            let slots = read_lock(&self.slots);
            slots.get(name).map(Arc::clone)
        };
        match slot {
            Some(slot) => Ok(Arc::clone(&read_lock(&slot.current))),
            None => Err(ServeError::ModelNotFound(name.to_string())),
        }
    }

    /// Whether the named slot (`None` = default) exists.
    pub fn contains(&self, name: Option<&str>) -> bool {
        read_lock(&self.slots).contains_key(name.unwrap_or(DEFAULT_MODEL))
    }

    /// Generation of the default slot's current version (0 if absent).
    pub fn generation(&self) -> u64 {
        self.generation_named(None)
    }

    /// Generation of the named slot's current version (0 if absent).
    pub fn generation_named(&self, name: Option<&str>) -> u64 {
        let slots = read_lock(&self.slots);
        slots
            .get(name.unwrap_or(DEFAULT_MODEL))
            .map_or(0, |s| s.generation.load(Ordering::Acquire))
    }

    /// `(name, generation, source)` for every slot, in name order.
    pub fn models(&self) -> Vec<(String, u64, String)> {
        // Snapshot the slot handles first so the map lock is released
        // before any per-slot lock is taken (no nested guards).
        let handles: Vec<(String, Arc<Slot>)> = {
            let slots = read_lock(&self.slots);
            slots
                .iter()
                .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
                .collect()
        };
        handles
            .into_iter()
            .map(|(name, slot)| {
                let v = read_lock(&slot.current);
                (name, v.generation, v.source.clone())
            })
            .collect()
    }

    /// Hot-swap the [`DEFAULT_MODEL`] slot to the bundle at `path`.
    ///
    /// The bundle is loaded, checksum-verified, and frozen *before* the
    /// write lock is taken; any defect returns a typed error and leaves
    /// the current version untouched. On success the slot's new
    /// generation number is returned and subsequent reads observe the
    /// new model; batches that already hold the old `Arc` finish on it.
    pub fn swap_from_bundle(&self, path: &Path) -> Result<u64, ServeError> {
        self.register_bundle(DEFAULT_MODEL, path)
    }

    /// Hot-swap the default slot to an in-process fine-tuned model.
    pub fn swap_tuned(&self, tuned: &FineTuned, source: &str) -> u64 {
        self.register_tuned(DEFAULT_MODEL, tuned, source)
    }

    /// Register or hot-swap the named slot from a bundle on disk. The
    /// slot is created at generation 1 if absent.
    pub fn register_bundle(&self, name: &str, path: &Path) -> Result<u64, ServeError> {
        let tuned = FineTuned::load_bundle(path)?;
        Ok(self.install(name, self.freeze(&tuned), &path.display().to_string()))
    }

    /// Register or hot-swap the named slot from an in-process model.
    pub fn register_tuned(&self, name: &str, tuned: &FineTuned, source: &str) -> u64 {
        self.install(name, self.freeze(tuned), source)
    }

    fn freeze(&self, tuned: &FineTuned) -> InferenceModel {
        let model = tuned.freeze(self.executor);
        match &self.hook {
            Some(h) => model.with_pre_classify_hook(Arc::clone(h)),
            None => model,
        }
    }

    fn install(&self, name: &str, model: InferenceModel, source: &str) -> u64 {
        // Existing slot: clone its handle under the map's read lock, then
        // flip the version pointer — readers of other slots never stall.
        let existing = {
            let slots = read_lock(&self.slots);
            slots.get(name).map(Arc::clone)
        };
        let version = |generation: u64| {
            Arc::new(ModelVersion {
                name: name.to_string(),
                generation,
                source: source.to_string(),
                model,
            })
        };
        match existing {
            Some(slot) => {
                let generation = slot.generation.fetch_add(1, Ordering::AcqRel) + 1;
                *write_lock(&slot.current) = version(generation);
                generation
            }
            None => {
                // New slot: build it fully formed before insertion so no
                // reader can ever observe a placeholder. A racing install
                // of the same new name is resolved under the write lock.
                let mut slots = write_lock(&self.slots);
                match slots.get(name) {
                    Some(slot) => {
                        let generation = slot.generation.fetch_add(1, Ordering::AcqRel) + 1;
                        *write_lock(&slot.current) = version(generation);
                        generation
                    }
                    None => {
                        slots.insert(
                            name.to_string(),
                            Arc::new(Slot {
                                current: RwLock::new(version(1)),
                                generation: AtomicU64::new(1),
                            }),
                        );
                        1
                    }
                }
            }
        }
    }
}
