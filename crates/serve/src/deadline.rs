//! Request deadlines and shedding priorities.
//!
//! Every request may carry an *absolute* [`Deadline`] (client-supplied
//! relative milliseconds, or the server's `--default-deadline-ms`). The
//! deadline is checked four times, so expired work is shed at the
//! earliest possible point instead of wasting a forward pass:
//!
//! 1. **admission** — an already-expired request is rejected without
//!    ever entering the queue;
//! 2. **batch assembly** — the assembler answers expired queued requests
//!    with [`DeadlineExceeded`](crate::ServeError::DeadlineExceeded) and
//!    leaves them out of the batch;
//! 3. **pre-forward** — an inference worker re-checks right before the
//!    forward pass (the batch may have waited in the in-flight channel);
//! 4. **post-inference** — a response computed after its deadline is
//!    reported as `DeadlineExceeded`, because the client has already
//!    given up on it.
//!
//! [`Priority`] orders admission shedding: under load the server rejects
//! low-priority work first (watermark on queue depth), then normal
//! priority (admission timeout), and only sheds high-priority requests
//! when the queue is hard-full.

use std::time::{Duration, Instant};

/// Absolute per-request deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Deadline {
        // aimts-lint: allow(A003, deadlines are wall-clock by definition; serving is not deterministic-replay code)
        Deadline(Instant::now() + Duration::from_millis(ms))
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(instant)
    }

    /// The absolute instant this deadline expires.
    pub fn instant(&self) -> Instant {
        self.0
    }

    /// Whether the deadline has expired as of `now`.
    pub fn expired(&self, now: Instant) -> bool {
        now >= self.0
    }
}

/// Shedding priority: under overload the server rejects `Low` work
/// first, `Normal` after the admission timeout, and `High` only when the
/// queue is hard-full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Shed last (still bounded by queue capacity).
    High,
    /// The default class: blocks up to the admission timeout when full.
    #[default]
    Normal,
    /// Shed first: rejected immediately once the queue passes the low
    /// watermark (3/4 of capacity), and never blocks on admission.
    Low,
}

impl Priority {
    /// Parse a priority name (`high` | `normal` | `low`).
    pub fn parse(s: &str) -> Result<Priority, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (use high|normal|low)")),
        }
    }

    /// Canonical lower-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Per-request submission options (see [`Server::submit_with`]).
///
/// [`Server::submit_with`]: crate::Server::submit_with
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Absolute deadline; `None` falls back to the server's default
    /// deadline (which may itself be "no deadline").
    pub deadline: Option<Deadline>,
    /// Shedding priority class.
    pub priority: Priority,
    /// Target model slot; `None` routes to [`DEFAULT_MODEL`].
    ///
    /// [`DEFAULT_MODEL`]: crate::registry::DEFAULT_MODEL
    pub model: Option<String>,
}

impl SubmitOptions {
    /// Options with a deadline `ms` milliseconds out.
    pub fn with_deadline_ms(ms: u64) -> SubmitOptions {
        SubmitOptions {
            deadline: Some(Deadline::in_ms(ms)),
            ..SubmitOptions::default()
        }
    }

    /// Options targeting a named model slot.
    pub fn for_model(name: &str) -> SubmitOptions {
        SubmitOptions {
            model: Some(name.to_string()),
            ..SubmitOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expiry_is_monotone() {
        let now = Instant::now();
        let d = Deadline::at(now + Duration::from_millis(5));
        assert!(!d.expired(now));
        assert!(d.expired(now + Duration::from_millis(5)));
        assert!(d.expired(now + Duration::from_millis(50)));
        assert!(Deadline::in_ms(0).expired(Instant::now()));
    }

    #[test]
    fn priority_parses_and_orders() {
        assert_eq!(Priority::parse("high").unwrap(), Priority::High);
        assert_eq!(Priority::parse("normal").unwrap(), Priority::Normal);
        assert_eq!(Priority::parse("low").unwrap(), Priority::Low);
        assert!(Priority::parse("urgent").is_err());
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::Low.as_str(), "low");
    }

    #[test]
    fn submit_options_builders() {
        let o = SubmitOptions::with_deadline_ms(10);
        assert!(o.deadline.is_some());
        assert_eq!(o.priority, Priority::Normal);
        let m = SubmitOptions::for_model("ecg");
        assert_eq!(m.model.as_deref(), Some("ecg"));
        assert!(m.deadline.is_none());
    }
}
