//! The embeddable server façade: admission-controlled submit, deadline
//! and priority options, model routing, hot swap, metrics, and the
//! graceful drain contract.
//!
//! Admission runs five checks, cheapest first, each with a typed
//! rejection: structural validation (`BadRequest`), shutdown state
//! (`Closed`), circuit breaker (`CircuitOpen`), model existence
//! (`ModelNotFound`), and deadline-already-expired (`DeadlineExceeded`).
//! Only then does the request contend for queue space: `Normal`/`High`
//! priority requests may block up to `admission_timeout` for a slot,
//! `Low` priority requests never block and are additionally shed once
//! the queue passes its 3/4 watermark — under sustained overload,
//! best-effort traffic degrades first, interactive traffic last.
//! Rejections carry a `retry_after_ms` hint sized from the queue depth
//! and flush cadence.
//!
//! **Drain contract**: [`Server::shutdown`] (also run by `Drop`) closes
//! the queue, then joins the assembler and every inference worker.
//! Requests admitted before the close are all answered — with their
//! response or a typed error — never silently dropped. Shutdown is
//! idempotent and concurrency-safe: every caller, including racers, only
//! returns after the drain has fully completed.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aimts_data::MultiSeries;

use crate::batcher::{
    self, AdmissionQueue, Assembled, BatchPolicy, Pending, PushReject, Request, Response,
};
use crate::breaker::CircuitBreaker;
use crate::chaos::ChaosPlan;
use crate::deadline::{Priority, SubmitOptions};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{ModelRegistry, DEFAULT_MODEL};
use crate::ServeError;

/// A running inference server: registry + admission queue + assembler +
/// inference worker pool + circuit breaker + metrics.
///
/// `Server` is `Sync`; any number of threads may submit concurrently.
pub struct Server {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    breaker: Arc<CircuitBreaker>,
    policy: BatchPolicy,
    queue: Arc<AdmissionQueue>,
    open: AtomicBool,
    assembler: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Server {
    /// Start serving `registry` under `policy` with no fault injection.
    pub fn start(registry: ModelRegistry, policy: BatchPolicy) -> Server {
        Self::start_with_chaos(registry, policy, ChaosPlan::none())
    }

    /// Start with a deterministic [`ChaosPlan`] wired into the inference
    /// workers (the `serve_chaos` suite's entry point; production callers
    /// use [`Server::start`], which passes an inert plan).
    pub fn start_with_chaos(
        registry: ModelRegistry,
        policy: BatchPolicy,
        chaos: ChaosPlan,
    ) -> Server {
        policy.validate();
        let registry = Arc::new(registry);
        let metrics = Arc::new(Metrics::default());
        let breaker = Arc::new(CircuitBreaker::new(
            policy.breaker_threshold,
            policy.breaker_cooldown,
            Arc::clone(&metrics),
        ));
        let queue = Arc::new(AdmissionQueue::new(policy.queue_cap, Arc::clone(&metrics)));
        let chaos = Arc::new(chaos);
        let (btx, brx) = mpsc::sync_channel::<Assembled>(policy.max_inflight_batches);
        let brx = Arc::new(Mutex::new(brx));
        let workers = (0..policy.inference_threads)
            .map(|i| {
                let brx = Arc::clone(&brx);
                let metrics = Arc::clone(&metrics);
                let breaker = Arc::clone(&breaker);
                let chaos = Arc::clone(&chaos);
                std::thread::Builder::new()
                    .name(format!("aimts-infer-{i}"))
                    .spawn(move || batcher::run_worker(brx, metrics, breaker, chaos))
                    .expect("spawn inference worker thread")
            })
            .collect();
        let assembler = {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("aimts-assembler".to_string())
                .spawn(move || batcher::run_assembler(queue, btx, registry, metrics, policy))
                .expect("spawn assembler thread")
        };
        Server {
            registry,
            metrics,
            breaker,
            policy,
            queue,
            open: AtomicBool::new(true),
            assembler: Mutex::new(Some(assembler)),
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(1),
        }
    }

    /// Submit with default options (no deadline unless the policy sets
    /// one, `Normal` priority, default model). Blocks at most
    /// `admission_timeout` for queue space; a full queue sheds with a
    /// typed [`ServeError::Overloaded`].
    pub fn submit(&self, series: MultiSeries) -> Result<Pending, ServeError> {
        self.submit_with(series, SubmitOptions::default())
    }

    /// Submit with explicit deadline / priority / model routing.
    pub fn submit_with(
        &self,
        series: MultiSeries,
        opts: SubmitOptions,
    ) -> Result<Pending, ServeError> {
        let timeout = match opts.priority {
            Priority::Low => Duration::ZERO,
            Priority::Normal | Priority::High => self.policy.admission_timeout,
        };
        self.admit(series, opts, timeout)
    }

    /// Non-blocking submit: `Ok(None)` when the queue is full (the shed
    /// is still counted), typed errors otherwise.
    pub fn try_submit(&self, series: MultiSeries) -> Result<Option<Pending>, ServeError> {
        match self.admit(series, SubmitOptions::default(), Duration::ZERO) {
            Ok(p) => Ok(Some(p)),
            Err(ServeError::Overloaded { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn admit(
        &self,
        series: MultiSeries,
        opts: SubmitOptions,
        timeout: Duration,
    ) -> Result<Pending, ServeError> {
        if let Err(why) = validate(&series) {
            self.metrics.record_rejected();
            return Err(ServeError::BadRequest(why));
        }
        if !self.open.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        // aimts-lint: allow(A003, admission timestamps are wall-clock by definition)
        let now = Instant::now();
        if let Err(retry_after_ms) = self.breaker.admit(now) {
            self.metrics.record_shed();
            return Err(ServeError::CircuitOpen { retry_after_ms });
        }
        if !self.registry.contains(opts.model.as_deref()) {
            self.metrics.record_model_not_found();
            let name = opts.model.unwrap_or_else(|| DEFAULT_MODEL.to_string());
            return Err(ServeError::ModelNotFound(name));
        }
        let deadline = opts
            .deadline
            .map(|d| d.instant())
            .or_else(|| self.policy.default_deadline.map(|d| now + d));
        if deadline.is_some_and(|d| now >= d) {
            self.metrics.record_deadline_exceeded(0);
            return Err(ServeError::DeadlineExceeded);
        }
        // Watermark shedding: best-effort traffic yields queue headroom
        // to interactive traffic before the queue is hard-full.
        if opts.priority == Priority::Low {
            let depth = self.queue.depth();
            if depth >= self.policy.low_watermark() {
                self.metrics.record_shed();
                return Err(self.overloaded(depth));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel::<Result<Response, ServeError>>();
        let req = Box::new(Request {
            id,
            series,
            model: opts.model,
            deadline,
            enqueued: now,
            reply,
        });
        match self.queue.push_within(req, timeout) {
            Ok(()) => Ok(Pending { id, rx }),
            // The rejected request comes back with its reply channel;
            // dropping it here is the synchronous answer — the caller
            // gets the typed error below instead of a Pending.
            Err(PushReject::Full(depth, rejected)) => {
                self.metrics.record_shed();
                drop(rejected);
                Err(self.overloaded(depth))
            }
            Err(PushReject::Closed(rejected)) => {
                drop(rejected);
                Err(ServeError::Closed)
            }
        }
    }

    /// Back-off hint: how long until the queue observed at `depth` has
    /// plausibly drained, given the flush cadence.
    fn overloaded(&self, depth: usize) -> ServeError {
        let per_flush_ms = self.policy.max_delay.as_millis().max(1) as u64;
        let flushes = (depth / self.policy.max_batch) as u64 + 1;
        ServeError::Overloaded {
            queue_depth: depth as u64,
            retry_after_ms: (flushes * per_flush_ms).clamp(1, 10_000),
        }
    }

    /// Submit and block for the answer (the one-shot convenience path).
    pub fn classify(&self, series: MultiSeries) -> Result<Response, ServeError> {
        self.submit(series)?.wait()
    }

    /// [`Server::classify`] with explicit options.
    pub fn classify_with(
        &self,
        series: MultiSeries,
        opts: SubmitOptions,
    ) -> Result<Response, ServeError> {
        self.submit_with(series, opts)?.wait()
    }

    /// Hot-swap the default slot to the bundle at `path`. Typed error on
    /// any bundle defect; the old model keeps serving either way.
    pub fn swap_from_bundle(&self, path: &Path) -> Result<u64, ServeError> {
        self.swap_named_from_bundle(DEFAULT_MODEL, path)
    }

    /// Hot-swap (or create) the named slot from the bundle at `path`.
    pub fn swap_named_from_bundle(&self, name: &str, path: &Path) -> Result<u64, ServeError> {
        let result = self.registry.register_bundle(name, path);
        self.metrics.record_swap(result.is_ok());
        result
    }

    /// The model registry (for generation queries or in-process swaps).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The circuit breaker (state inspection; tests drive it via chaos).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The batch policy this server runs.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Close admission, drain every accepted request, and join the
    /// pipeline threads. Idempotent and concurrency-safe: every caller
    /// returns only after the drain has completed (racing callers park on
    /// the join locks). Also invoked by `Drop`.
    pub fn shutdown(&self) {
        self.open.store(false, Ordering::Release);
        self.queue.close();
        // Hold the assembler guard across BOTH joins so a second
        // concurrent shutdown() blocks until the whole drain is done
        // instead of returning while requests are still in flight.
        let mut assembler = lock(&self.assembler);
        if let Some(handle) = assembler.take() {
            handle.join().ok();
        }
        let mut workers = lock(&self.workers);
        for handle in workers.drain(..) {
            handle.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Structural request validation: non-empty, rectangular, finite values.
fn validate(series: &MultiSeries) -> Result<(), String> {
    if series.is_empty() {
        return Err("series has no variables".to_string());
    }
    let t = series[0].len();
    if t == 0 {
        return Err("series has zero time steps".to_string());
    }
    for (m, var) in series.iter().enumerate() {
        if var.len() != t {
            return Err(format!(
                "ragged series: variable {m} has {} steps, variable 0 has {t}",
                var.len()
            ));
        }
        if let Some(v) = var.iter().find(|v| !v.is_finite()) {
            return Err(format!("variable {m} contains non-finite value {v}"));
        }
    }
    Ok(())
}
