//! The embeddable server façade: submit requests, await responses, swap
//! models, read metrics.

use std::path::Path;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use aimts_data::MultiSeries;

use crate::batcher::{self, BatchPolicy, Pending, Request, Response};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::ModelRegistry;
use crate::ServeError;

/// A running inference server: registry + micro-batcher + metrics.
///
/// `Server` is `Sync`; any number of threads may submit concurrently.
/// Dropping the server (or calling [`Server::shutdown`]) closes the queue,
/// lets the batcher drain every accepted request, and joins the thread —
/// accepted requests are never dropped, even across shutdown.
pub struct Server {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    policy: BatchPolicy,
    tx: Mutex<Option<SyncSender<Request>>>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    next_id: std::sync::atomic::AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Server {
    /// Start serving `registry`'s current model under `policy`.
    pub fn start(registry: ModelRegistry, policy: BatchPolicy) -> Server {
        policy.validate();
        let registry = Arc::new(registry);
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = mpsc::sync_channel::<Request>(policy.queue_cap);
        let batcher = {
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("aimts-batcher".to_string())
                .spawn(move || batcher::run(rx, registry, metrics, policy))
                .expect("spawn batcher thread")
        };
        Server {
            registry,
            metrics,
            policy,
            tx: Mutex::new(Some(tx)),
            batcher: Mutex::new(Some(batcher)),
            next_id: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Enqueue one classification request; blocks only when the bounded
    /// queue is full (back-pressure). Returns a [`Pending`] handle whose
    /// [`Pending::wait`] yields exactly one [`Response`].
    pub fn submit(&self, series: MultiSeries) -> Result<Pending, ServeError> {
        if let Err(why) = validate(&series) {
            self.metrics.record_rejected();
            return Err(ServeError::BadRequest(why));
        }
        let tx = match lock(&self.tx).as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (reply, rx) = mpsc::channel::<Response>();
        self.metrics.record_received();
        let req = Request {
            id,
            series,
            // aimts-lint: allow(A003, request latency timestamps are wall-clock by definition)
            enqueued: Instant::now(),
            reply,
        };
        if tx.send(req).is_err() {
            // Batcher gone mid-flight (shutdown race): nothing was queued.
            self.metrics.record_dequeued();
            return Err(ServeError::Closed);
        }
        Ok(Pending { id, rx })
    }

    /// Non-blocking submit: `Err(BadRequest)` on invalid input,
    /// `Err(Closed)` when shut down, `Ok(None)` when the queue is full.
    pub fn try_submit(&self, series: MultiSeries) -> Result<Option<Pending>, ServeError> {
        if let Err(why) = validate(&series) {
            self.metrics.record_rejected();
            return Err(ServeError::BadRequest(why));
        }
        let tx = match lock(&self.tx).as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (reply, rx) = mpsc::channel::<Response>();
        self.metrics.record_received();
        let req = Request {
            id,
            series,
            // aimts-lint: allow(A003, request latency timestamps are wall-clock by definition)
            enqueued: Instant::now(),
            reply,
        };
        match tx.try_send(req) {
            Ok(()) => Ok(Some(Pending { id, rx })),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_dequeued();
                Ok(None)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.record_dequeued();
                Err(ServeError::Closed)
            }
        }
    }

    /// Submit and block for the answer (the one-shot convenience path).
    pub fn classify(&self, series: MultiSeries) -> Result<Response, ServeError> {
        self.submit(series)?.wait()
    }

    /// Hot-swap the served model to the bundle at `path` (see
    /// [`ModelRegistry::swap_from_bundle`]). Typed error on any bundle
    /// defect; the old model keeps serving either way until the flip.
    pub fn swap_from_bundle(&self, path: &Path) -> Result<u64, ServeError> {
        let result = self.registry.swap_from_bundle(path);
        self.metrics.record_swap(result.is_ok());
        result
    }

    /// The model registry (for generation queries or in-process swaps).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The batch policy this server runs.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Close the queue and join the batcher after it drains every accepted
    /// request. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the channel once queued requests
        // are consumed; the batcher flushes them all before exiting.
        lock(&self.tx).take();
        if let Some(handle) = lock(&self.batcher).take() {
            handle.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Structural request validation: non-empty, rectangular, finite values.
fn validate(series: &MultiSeries) -> Result<(), String> {
    if series.is_empty() {
        return Err("series has no variables".to_string());
    }
    let t = series[0].len();
    if t == 0 {
        return Err("series has zero time steps".to_string());
    }
    for (m, var) in series.iter().enumerate() {
        if var.len() != t {
            return Err(format!(
                "ragged series: variable {m} has {} steps, variable 0 has {t}",
                var.len()
            ));
        }
        if let Some(v) = var.iter().find(|v| !v.is_finite()) {
            return Err(format!("variable {m} contains non-finite value {v}"));
        }
    }
    Ok(())
}
