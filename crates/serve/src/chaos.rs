//! Deterministic chaos injection for the serving stack.
//!
//! [`ChaosPlan`] plays the role [`FaultPlan`](aimts::FaultPlan) plays for
//! training: an inert-by-default, fully deterministic schedule of faults
//! that the `serve_chaos` suite drives through the real code paths. Three
//! fault families:
//!
//! - **latency spikes** — the inference worker sleeps before the forward
//!   pass of scheduled flush indices (saturates the queue, expires
//!   deadlines);
//! - **flush panics** — the guarded forward of scheduled flush indices
//!   panics *once*, at the top level only: bisection retries run clean,
//!   so a transient panic is survivable while the breaker still counts
//!   the failure;
//! - **poison payloads** — any series containing [`POISON_SENTINEL`]
//!   panics the model's pre-classify hook ([`poison_trap`]) every time
//!   it is seen, so bisection must isolate exactly the poisoned
//!   requests.
//!
//! Schedules are either scripted (explicit flush indices) or derived
//! from a seed via a splitmix-style generator — same seed, same faults,
//! on any machine and any thread count.

use std::sync::Arc;
use std::time::Duration;

use aimts_data::MultiSeries;

/// A finite magic value marking a poison request: it passes structural
/// validation (finite, well-shaped) but [`poison_trap`] panics on it —
/// the serving analogue of a NaN-bomb payload that crashes the model.
pub const POISON_SENTINEL: f32 = 3.402e37;

/// Deterministic fault schedule for the serving stack. Inert by default;
/// not intended for production configs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Sleep this long before the forward pass of every flush whose
    /// index is in [`ChaosPlan::spike_flushes`].
    pub spike: Duration,
    /// Flush indices (0-based, assigned at assembly) that incur the
    /// latency spike.
    pub spike_flushes: Vec<u64>,
    /// Flush indices whose top-level guarded forward panics once.
    pub panic_flushes: Vec<u64>,
}

impl ChaosPlan {
    /// An inert plan (no faults).
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// A seeded schedule over the first `flushes` flush indices: each
    /// index spikes with probability `1/spike_one_in` and panics with
    /// probability `1/panic_one_in` (0 disables a family). Deterministic
    /// in `seed`.
    pub fn seeded(
        seed: u64,
        flushes: u64,
        spike_one_in: u64,
        spike: Duration,
        panic_one_in: u64,
    ) -> ChaosPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut roll = |one_in: u64| {
            if one_in == 0 {
                return false;
            }
            // splitmix64 step: high-quality, dependency-free determinism.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)).is_multiple_of(one_in)
        };
        let mut plan = ChaosPlan {
            spike,
            ..ChaosPlan::default()
        };
        for flush in 0..flushes {
            if roll(spike_one_in) {
                plan.spike_flushes.push(flush);
            }
            if roll(panic_one_in) {
                plan.panic_flushes.push(flush);
            }
        }
        plan
    }

    /// Whether flush `flush` sleeps before its forward pass.
    pub fn spikes(&self, flush: u64) -> bool {
        !self.spike.is_zero() && self.spike_flushes.contains(&flush)
    }

    /// Whether flush `flush`'s top-level forward panics.
    pub fn panics(&self, flush: u64) -> bool {
        self.panic_flushes.contains(&flush)
    }

    /// Whether the plan injects nothing at all (the production state).
    pub fn is_inert(&self) -> bool {
        self.spike_flushes.is_empty() && self.panic_flushes.is_empty()
    }
}

/// A pre-classify hook (see
/// [`InferenceModel::with_pre_classify_hook`](aimts::InferenceModel::with_pre_classify_hook))
/// that panics whenever any sample in the batch contains
/// [`POISON_SENTINEL`] — the deterministic stand-in for a payload that
/// crashes the model. Bisection in the batcher must isolate exactly the
/// poisoned requests while their batch-mates are answered normally.
pub fn poison_trap() -> crate::registry::InferHook {
    Arc::new(|samples: &[&MultiSeries]| {
        let poisoned = samples.iter().any(|s| {
            s.iter()
                .flatten()
                .any(|v| v.to_bits() == POISON_SENTINEL.to_bits())
        });
        assert!(!poisoned, "chaos: poison payload reached the model");
    })
}

/// A poison sample: structurally valid (finite, rectangular) but carrying
/// the sentinel that [`poison_trap`] panics on.
pub fn poison_sample(t: usize) -> MultiSeries {
    let mut v = vec![0.5f32; t];
    v[t / 2] = POISON_SENTINEL;
    vec![v]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = ChaosPlan::none();
        assert!(p.is_inert());
        assert!(!p.spikes(0));
        assert!(!p.panics(0));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::seeded(7, 64, 4, Duration::from_millis(1), 8);
        let b = ChaosPlan::seeded(7, 64, 4, Duration::from_millis(1), 8);
        let c = ChaosPlan::seeded(8, 64, 4, Duration::from_millis(1), 8);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(!a.is_inert());
        // Disabled families inject nothing.
        let quiet = ChaosPlan::seeded(7, 64, 0, Duration::ZERO, 0);
        assert!(quiet.is_inert());
    }

    #[test]
    fn poison_trap_panics_only_on_the_sentinel() {
        let trap = poison_trap();
        let clean: MultiSeries = vec![vec![0.0, 1.0, 2.0]];
        trap(&[&clean]); // must not panic
        let bad = poison_sample(8);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| trap(&[&clean, &bad])));
        assert!(err.is_err(), "sentinel must trip the trap");
        // The sentinel is finite, so it passes structural validation.
        assert!(POISON_SENTINEL.is_finite());
    }
}
