//! `aimts-serve` — micro-batched online inference for AimTS classifiers.
//!
//! The serving stack (DESIGN.md §13):
//!
//! - [`registry`]: versioned, immutable models loaded from `.aimts` serving
//!   bundles into *named slots*, swapped atomically under load (`Arc`
//!   pointer flip; in-flight batches finish on the model they grabbed).
//! - [`batcher`]: an admission-controlled bounded queue drained by an
//!   assembler thread into batches executed on an inference worker pool,
//!   guarded by a circuit breaker with poison-request isolation.
//! - [`deadline`]: per-request absolute deadlines and shedding priorities,
//!   checked at admission, at batch assembly, before the forward pass, and
//!   after it — expired work is shed, never silently dropped.
//! - [`breaker`]: the circuit breaker that trips after K consecutive
//!   panicking flushes and recovers through a half-open probe.
//! - [`chaos`]: deterministic fault injection (latency spikes, flush
//!   panics, poison payloads) for the `serve_chaos` suite.
//! - [`server`]: the embeddable façade — submit/classify/swap/metrics,
//!   plus the graceful drain contract.
//! - [`metrics`]: latency percentiles per outcome, throughput, queue
//!   depth, shed/deadline/breaker counters.
//! - [`loadgen`]: a synthetic multi-client load generator recording
//!   `bench_results/serve_load.json`, overload outcomes included.
//! - [`net`]: a hardened JSON-lines TCP frontend (read/write timeouts,
//!   max frame size, typed error replies).
//!
//! Served predictions are bitwise-identical to offline
//! [`aimts::FineTuned::predict`] for any batch split and arrival order —
//! `tests/serve_conformance.rs` (workspace root) pins that contract; the
//! crate-local suites cover batching properties, swap fault injection,
//! overload/chaos behavior, and frontend hardening.
//!
//! Threading is plain `std`: one assembler thread, a small inference
//! worker pool, no async runtime. That keeps the crate dependency-free
//! (the workspace vendors API shims, not tokio) while still overlapping
//! request arrival with model execution.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;

use aimts_nn::CheckpointError;

pub mod batcher;
pub mod breaker;
pub mod chaos;
pub mod deadline;
pub mod loadgen;
pub mod metrics;
pub mod net;
pub mod registry;
pub mod server;

pub use batcher::{BatchPolicy, Pending, Response};
pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos::{poison_trap, ChaosPlan, POISON_SENTINEL};
pub use deadline::{Deadline, Priority, SubmitOptions};
pub use loadgen::{run_loadgen, write_report, LoadReport, LoadgenConfig};
pub use metrics::{Metrics, MetricsSnapshot};
pub use net::NetPolicy;
pub use registry::{ModelRegistry, ModelVersion, DEFAULT_MODEL};
pub use server::Server;

/// Typed serving errors. Checkpoint defects keep the full
/// [`CheckpointError`] taxonomy so a rejected hot swap names the exact
/// corruption (bad magic, CRC mismatch, truncation, shape mismatch, ...);
/// overload rejections carry enough context for a client to back off.
#[derive(Debug)]
pub enum ServeError {
    /// Loading or validating a serving bundle failed; the previously
    /// registered model keeps serving.
    Checkpoint(CheckpointError),
    /// The request is structurally invalid (empty series, ragged
    /// variables); it was never enqueued.
    BadRequest(String),
    /// Admission control shed the request: the queue is at (or, for
    /// low-priority work, near) capacity and the submitter's admission
    /// timeout elapsed. Nothing was enqueued; retry after the hint.
    Overloaded {
        /// Queue depth observed at rejection time.
        queue_depth: u64,
        /// Suggested client back-off before retrying.
        retry_after_ms: u64,
    },
    /// The request's deadline expired — at admission, while queued, or
    /// before its response could be delivered. Expired work is shed
    /// before it wastes a forward pass whenever possible.
    DeadlineExceeded,
    /// The request named a model that has no registry slot.
    ModelNotFound(String),
    /// The circuit breaker is open after consecutive inference panics;
    /// admission resumes after the cooldown (half-open probe).
    CircuitOpen {
        /// Remaining cooldown before a probe is admitted.
        retry_after_ms: u64,
    },
    /// Inference panicked on this specific request even in isolation (a
    /// poison payload); its batch-mates were answered normally.
    InferenceFailed(String),
    /// A frontend frame exceeded the configured maximum size.
    FrameTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The server has shut down; no response will arrive.
    Closed,
}

impl ServeError {
    /// Stable machine-readable error code (the TCP frontend ships it as
    /// the `code` field of error replies).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Checkpoint(_) => "checkpoint",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::ModelNotFound(_) => "model_not_found",
            ServeError::CircuitOpen { .. } => "circuit_open",
            ServeError::InferenceFailed(_) => "inference_failed",
            ServeError::FrameTooLarge { .. } => "frame_too_large",
            ServeError::Closed => "closed",
        }
    }

    /// Back-off hint for retryable rejections, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Overloaded { retry_after_ms, .. }
            | ServeError::CircuitOpen { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "serving bundle rejected: {e}"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: queue depth {queue_depth}, retry after {retry_after_ms}ms"
            ),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ModelNotFound(name) => write!(f, "model `{name}` not found"),
            ServeError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit breaker open: retry after {retry_after_ms}ms")
            }
            ServeError::InferenceFailed(why) => write!(f, "inference failed: {why}"),
            ServeError::FrameTooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ServeError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}
