//! `aimts-serve` — micro-batched online inference for AimTS classifiers.
//!
//! The serving stack (DESIGN.md §13):
//!
//! - [`registry`]: versioned, immutable models loaded from `.aimts` serving
//!   bundles, swapped atomically under load (`Arc` pointer flip; in-flight
//!   batches finish on the model they grabbed).
//! - [`batcher`]: a bounded request queue drained by a batcher thread that
//!   flushes on `max_batch` or `max_delay`, whichever comes first.
//! - [`server`]: the embeddable façade — submit/classify/swap/metrics.
//! - [`metrics`]: p50/p95/p99 latency, throughput, and queue-depth counters.
//! - [`loadgen`]: a synthetic multi-client load generator recording
//!   `bench_results/serve_load.json`.
//! - [`net`]: a minimal JSON-lines TCP frontend for `aimts-cli serve`.
//!
//! Served predictions are bitwise-identical to offline
//! [`aimts::FineTuned::predict`] for any batch split and arrival order —
//! `tests/serve_conformance.rs` (workspace root) pins that contract; the
//! crate-local suites cover batching properties and swap fault injection.
//!
//! Threading is plain `std`: one batcher thread, one channel, no async
//! runtime. That keeps the crate dependency-free (the workspace vendors
//! API shims, not tokio) while still overlapping request arrival with
//! model execution.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;

use aimts_nn::CheckpointError;

pub mod batcher;
pub mod loadgen;
pub mod metrics;
pub mod net;
pub mod registry;
pub mod server;

pub use batcher::{BatchPolicy, Pending, Response};
pub use loadgen::{run_loadgen, write_report, LoadReport, LoadgenConfig};
pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelRegistry, ModelVersion};
pub use server::Server;

/// Typed serving errors. Checkpoint defects keep the full
/// [`CheckpointError`] taxonomy so a rejected hot swap names the exact
/// corruption (bad magic, CRC mismatch, truncation, shape mismatch, ...).
#[derive(Debug)]
pub enum ServeError {
    /// Loading or validating a serving bundle failed; the previously
    /// registered model keeps serving.
    Checkpoint(CheckpointError),
    /// The request is structurally invalid (empty series, ragged
    /// variables); it was never enqueued.
    BadRequest(String),
    /// The server has shut down; no response will arrive.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "serving bundle rejected: {e}"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}
