//! Serving metrics: latency percentiles, throughput, queue depth.
//!
//! Counters are lock-free atomics updated from the submit and batcher
//! paths; per-request latencies append to a mutex-guarded buffer (one push
//! per completed request, far off the model-execution hot path). Latency
//! accounting splits each request into *queue* time (submit → batch
//! dequeue) and *total* time (submit → response ready); percentiles are
//! nearest-rank over the completed population.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

/// Live counters for one server instance.
pub struct Metrics {
    received: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    swap_failures: AtomicU64,
    total_us: Mutex<Vec<u64>>,
    queue_us: Mutex<Vec<u64>>,
    started: Instant,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_failures: AtomicU64::new(0),
            total_us: Mutex::new(Vec::new()),
            queue_us: Mutex::new(Vec::new()),
            // aimts-lint: allow(A003, uptime/throughput base timestamp)
            started: Instant::now(),
        }
    }
}

impl Metrics {
    pub fn record_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the queue for a batch.
    pub fn record_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn record_completion(&self, queue_us: u64, total_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        lock(&self.total_us).push(total_us);
        lock(&self.queue_us).push(queue_us);
    }

    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_swap(&self, ok: bool) {
        if ok {
            self.swaps.fetch_add(1, Ordering::Relaxed);
        } else {
            self.swap_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests currently queued (submitted, not yet picked into a batch).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let total = lock(&self.total_us).clone();
        let queue = lock(&self.queue_us).clone();
        let elapsed = self.started.elapsed().as_secs_f64();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        MetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_failures: self.swap_failures.load(Ordering::Relaxed),
            uptime_s: elapsed,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            latency: LatencySummary::of(total),
            queue_wait: LatencySummary::of(queue),
        }
    }
}

/// Nearest-rank percentile summary over a latency population (µs).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub mean_us: f64,
}

impl LatencySummary {
    fn of(mut xs: Vec<u64>) -> LatencySummary {
        if xs.is_empty() {
            return LatencySummary {
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
                mean_us: 0.0,
            };
        }
        xs.sort_unstable();
        let sum: u64 = xs.iter().sum();
        LatencySummary {
            p50_us: percentile(&xs, 50.0),
            p95_us: percentile(&xs, 95.0),
            p99_us: percentile(&xs, 99.0),
            max_us: xs[xs.len() - 1],
            mean_us: sum as f64 / xs.len() as f64,
        }
    }
}

/// Nearest-rank percentile of a sorted, non-empty slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Serializable point-in-time metrics (the `metrics` TCP command and the
/// load-generator report both emit this).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub received: u64,
    pub completed: u64,
    pub rejected: u64,
    pub queue_depth: u64,
    pub batches: u64,
    pub mean_batch: f64,
    pub swaps: u64,
    pub swap_failures: u64,
    pub uptime_s: f64,
    pub throughput_rps: f64,
    pub latency: LatencySummary,
    pub queue_wait: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn snapshot_counts_and_throughput() {
        let m = Metrics::default();
        for i in 0..10 {
            m.record_received();
            m.record_dequeued();
            m.record_completion(i, 10 * i + 1);
        }
        m.record_batch();
        let s = m.snapshot();
        assert_eq!(s.received, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 1);
        assert_eq!(s.latency.max_us, 91);
        assert!(s.throughput_rps > 0.0);
        // Snapshot is serializable (the TCP frontend ships it as JSON).
        let json = serde_json::to_string(&s).expect("serialize snapshot");
        assert!(json.contains("\"p99_us\""));
    }
}
