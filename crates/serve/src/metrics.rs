//! Serving metrics: latency percentiles per outcome, throughput, queue
//! depth, and overload/failure counters.
//!
//! Counters are lock-free atomics updated from the admission and batcher
//! paths; per-request latencies append to mutex-guarded buffers (one push
//! per answered request, far off the model-execution hot path). Latency
//! accounting splits each request into *queue* time (submit → batch
//! dequeue) and *total* time (submit → response ready); percentiles are
//! nearest-rank over the per-outcome population — completions, deadline
//! expiries, and inference failures are summarized separately so overload
//! behavior is measurable, not just asserted.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

/// Live counters for one server instance.
pub struct Metrics {
    received: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    model_not_found: AtomicU64,
    inference_failures: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_state: AtomicU8,
    inflight_batches: AtomicU64,
    queue_depth: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    swap_failures: AtomicU64,
    total_us: Mutex<Vec<u64>>,
    queue_us: Mutex<Vec<u64>>,
    deadline_us: Mutex<Vec<u64>>,
    failure_us: Mutex<Vec<u64>>,
    started: Instant,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            model_not_found: AtomicU64::new(0),
            inference_failures: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_state: AtomicU8::new(0),
            inflight_batches: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_failures: AtomicU64::new(0),
            total_us: Mutex::new(Vec::new()),
            queue_us: Mutex::new(Vec::new()),
            deadline_us: Mutex::new(Vec::new()),
            failure_us: Mutex::new(Vec::new()),
            // aimts-lint: allow(A003, uptime/throughput metrics measure real elapsed time and affect no model state)
            started: Instant::now(),
        }
    }
}

impl Metrics {
    /// A request passed admission and entered the queue.
    pub fn record_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A structurally invalid request was rejected at submit.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission control shed a request (queue full / watermark /
    /// breaker open); it never entered the queue.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's deadline expired (at admission, assembly, pre-forward,
    /// or post-inference); `total_us` is submit → expiry-detection when
    /// the request had been admitted, 0 when rejected at admission.
    pub fn record_deadline_exceeded(&self, total_us: u64) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        lock(&self.deadline_us).push(total_us);
    }

    /// A request named a model with no registry slot.
    pub fn record_model_not_found(&self) {
        self.model_not_found.fetch_add(1, Ordering::Relaxed);
    }

    /// Inference panicked on this request even in isolation (poison).
    pub fn record_inference_failure(&self, total_us: u64) {
        self.inference_failures.fetch_add(1, Ordering::Relaxed);
        lock(&self.failure_us).push(total_us);
    }

    /// The circuit breaker tripped open.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Mirror of the breaker state (0 closed, 1 open, 2 half-open).
    pub fn set_breaker_state(&self, state: u8) {
        self.breaker_state.store(state, Ordering::Relaxed);
    }

    /// A batch was handed to the inference pool.
    pub fn inflight_inc(&self) {
        self.inflight_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// A batch finished (every request answered).
    pub fn inflight_dec(&self) {
        self.inflight_batches.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request left the queue for a batch.
    pub fn record_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request was answered successfully.
    pub fn record_completion(&self, queue_us: u64, total_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        lock(&self.total_us).push(total_us);
        lock(&self.queue_us).push(queue_us);
    }

    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_swap(&self, ok: bool) {
        if ok {
            self.swaps.fetch_add(1, Ordering::Relaxed);
        } else {
            self.swap_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests currently queued (submitted, not yet picked into a batch).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let total = lock(&self.total_us).clone();
        let queue = lock(&self.queue_us).clone();
        let deadline = lock(&self.deadline_us).clone();
        let failure = lock(&self.failure_us).clone();
        let elapsed = self.started.elapsed().as_secs_f64();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        MetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            model_not_found: self.model_not_found.load(Ordering::Relaxed),
            inference_failures: self.inference_failures.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_state: self.breaker_state.load(Ordering::Relaxed),
            inflight_batches: self.inflight_batches.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_failures: self.swap_failures.load(Ordering::Relaxed),
            uptime_s: elapsed,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            latency: LatencySummary::of(total),
            queue_wait: LatencySummary::of(queue),
            deadline_latency: LatencySummary::of(deadline),
            failure_latency: LatencySummary::of(failure),
        }
    }
}

/// Nearest-rank percentile summary over a latency population (µs).
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub mean_us: f64,
}

impl LatencySummary {
    fn of(mut xs: Vec<u64>) -> LatencySummary {
        if xs.is_empty() {
            return LatencySummary {
                p50_us: 0,
                p95_us: 0,
                p99_us: 0,
                max_us: 0,
                mean_us: 0.0,
            };
        }
        xs.sort_unstable();
        let sum: u64 = xs.iter().sum();
        LatencySummary {
            p50_us: percentile(&xs, 50.0),
            p95_us: percentile(&xs, 95.0),
            p99_us: percentile(&xs, 99.0),
            max_us: xs[xs.len() - 1],
            mean_us: sum as f64 / xs.len() as f64,
        }
    }
}

/// Nearest-rank percentile of a sorted, non-empty slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Serializable point-in-time metrics (the `metrics` TCP command and the
/// load-generator report both emit this).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    pub received: u64,
    pub completed: u64,
    pub rejected: u64,
    pub shed: u64,
    pub deadline_exceeded: u64,
    pub model_not_found: u64,
    pub inference_failures: u64,
    pub breaker_trips: u64,
    pub breaker_state: u8,
    pub inflight_batches: u64,
    pub queue_depth: u64,
    pub batches: u64,
    pub mean_batch: f64,
    pub swaps: u64,
    pub swap_failures: u64,
    pub uptime_s: f64,
    pub throughput_rps: f64,
    pub latency: LatencySummary,
    pub queue_wait: LatencySummary,
    pub deadline_latency: LatencySummary,
    pub failure_latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Every admitted request must be answered exactly once: `received`
    /// equals the sum of completed, deadline-expired-after-admission,
    /// inference failures, and still-queued/in-flight requests.
    /// Admission-time deadline rejections are not "received", so callers
    /// pass that count as `admission_deadline_rejects` to exclude it.
    pub fn accounted_for(&self, admission_deadline_rejects: u64) -> bool {
        let answered = self.completed
            + (self.deadline_exceeded - admission_deadline_rejects)
            + self.inference_failures;
        self.received == answered + self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn snapshot_counts_and_throughput() {
        let m = Metrics::default();
        for i in 0..10 {
            m.record_received();
            m.record_dequeued();
            m.record_completion(i, 10 * i + 1);
        }
        m.record_batch();
        let s = m.snapshot();
        assert_eq!(s.received, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 1);
        assert_eq!(s.latency.max_us, 91);
        assert!(s.throughput_rps > 0.0);
        assert!(s.accounted_for(0));
        // Snapshot is serializable (the TCP frontend ships it as JSON).
        let json = serde_json::to_string(&s).expect("serialize snapshot");
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"shed\""));
        assert!(json.contains("\"breaker_state\""));
    }

    #[test]
    fn overload_counters_and_outcome_latencies() {
        let m = Metrics::default();
        m.record_shed();
        m.record_shed();
        m.record_received();
        m.record_dequeued();
        m.record_deadline_exceeded(1_000);
        m.record_received();
        m.record_dequeued();
        m.record_inference_failure(2_000);
        m.record_model_not_found();
        m.record_breaker_trip();
        m.set_breaker_state(1);
        m.inflight_inc();
        let s = m.snapshot();
        assert_eq!(s.shed, 2);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.inference_failures, 1);
        assert_eq!(s.model_not_found, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_state, 1);
        assert_eq!(s.inflight_batches, 1);
        assert_eq!(s.deadline_latency.max_us, 1_000);
        assert_eq!(s.failure_latency.max_us, 2_000);
        assert!(s.accounted_for(0), "2 received, 2 answered, 0 queued");
        m.inflight_dec();
        assert_eq!(m.snapshot().inflight_batches, 0);
    }
}
