//! The [`Module`] trait: forward pass + parameter enumeration.

use aimts_tensor::Tensor;

/// A neural-network component.
///
/// Parameters are leaf variables created with `requires_grad()`; cloning a
/// `Tensor` clones the handle, so optimizers and checkpoints observe the
/// same storage the module computes with.
pub trait Module {
    /// Compute the output for `x`.
    fn forward(&self, x: &Tensor) -> Tensor;

    /// All trainable parameters (handles, not copies).
    fn parameters(&self) -> Vec<Tensor> {
        let mut named = Vec::new();
        self.named_parameters("", &mut named);
        named.into_iter().map(|(_, t)| t).collect()
    }

    /// Parameters with hierarchical names (`prefix.child.weight`), used by
    /// checkpointing.
    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>);

    /// Toggle training-time behaviour (dropout, batch-norm statistics).
    fn set_training(&self, _training: bool) {}

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

/// Join a prefix and a leaf name with `.` (no leading dot for roots).
pub(crate) fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
