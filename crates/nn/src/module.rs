//! The [`Module`] trait: forward pass, parameter enumeration, and the
//! flat-buffer surface used by data-parallel training, plus the
//! [`Replicate`]/[`AnyModule`] traits for cloning modules onto workers.

use aimts_tensor::Tensor;

/// A neural-network component.
///
/// Parameters are leaf variables created with `requires_grad()`; cloning a
/// `Tensor` clones the handle, so optimizers and checkpoints observe the
/// same storage the module computes with.
pub trait Module {
    /// Compute the output for `x`.
    fn forward(&self, x: &Tensor) -> Tensor;

    /// All trainable parameters (handles, not copies).
    fn parameters(&self) -> Vec<Tensor> {
        let mut named = Vec::new();
        self.named_parameters("", &mut named);
        named.into_iter().map(|(_, t)| t).collect()
    }

    /// Parameters with hierarchical names (`prefix.child.weight`), used by
    /// checkpointing.
    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>);

    /// Toggle training-time behaviour (dropout, batch-norm statistics).
    fn set_training(&self, _training: bool) {}

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    /// Every parameter value concatenated in `parameters()` order. The
    /// inverse of [`Module::load_flat`]; used to ship master weights to
    /// worker replicas. The buffer is arena-backed when the calling thread
    /// has a pool enabled (see [`aimts_tensor::arena`]), so per-round
    /// snapshots recycle instead of reallocating.
    fn flat_parameters(&self) -> Vec<f32> {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        let mut out = aimts_tensor::arena::take(total);
        for p in &params {
            out.extend_from_slice(&p.data());
        }
        out
    }

    /// Overwrite every parameter from a buffer produced by
    /// [`Module::flat_parameters`] (of a module with identical structure).
    /// Panics if the total length differs.
    fn load_flat(&self, flat: &[f32]) {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        assert_eq!(
            flat.len(),
            total,
            "load_flat length mismatch: buffer has {} values, module has {total} parameters",
            flat.len()
        );
        let mut off = 0;
        for p in &params {
            let n = p.numel();
            p.set_data(&flat[off..off + n]);
            off += n;
        }
    }

    /// Accumulated gradients concatenated in `parameters()` order, with
    /// zeros for parameters that have no gradient yet. Pairs with
    /// [`Module::accumulate_flat_gradient`] for gradient all-reduce.
    fn flat_gradient(&self) -> Vec<f32> {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        let mut out = aimts_tensor::arena::take(total);
        for p in &params {
            match p.grad() {
                Some(g) => out.extend_from_slice(&g),
                None => out.resize(out.len() + p.numel(), 0f32),
            }
        }
        out
    }

    /// Add a flat gradient buffer (as produced by [`Module::flat_gradient`])
    /// into the parameters' `.grad` slots. Panics if the length differs.
    fn accumulate_flat_gradient(&self, flat: &[f32]) {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        assert_eq!(
            flat.len(),
            total,
            "accumulate_flat_gradient length mismatch: buffer has {} values, module has {total} parameters",
            flat.len()
        );
        let mut off = 0;
        for p in &params {
            let n = p.numel();
            p.accumulate_grad(&flat[off..off + n]);
            off += n;
        }
    }
}

/// Deep copy with fresh parameter (and internal-state) storage.
///
/// A replica shares *nothing* with the original: forward/backward on the
/// replica never touches the original's buffers or gradients, which is what
/// lets each data-parallel worker own a private copy of the model.
pub trait Replicate {
    fn replicate(&self) -> Self;
}

/// Object-safe module-with-replication, used by containers that hold
/// heterogeneous children (e.g. `Sequential`). Requires `Send + Sync` so
/// boxed children can cross thread boundaries with their parent module.
pub trait AnyModule: Module + Send + Sync {
    /// Boxed deep copy (see [`Replicate`]).
    fn replicate_boxed(&self) -> Box<dyn AnyModule>;
}

impl<M: Module + Replicate + Send + Sync + 'static> AnyModule for M {
    fn replicate_boxed(&self) -> Box<dyn AnyModule> {
        Box::new(self.replicate())
    }
}

/// Join a prefix and a leaf name with `.` (no leading dot for roots).
pub(crate) fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
