//! The [`Module`] trait: forward pass, parameter enumeration, and the
//! flat-buffer surface used by data-parallel training, plus the
//! [`Replicate`]/[`AnyModule`] traits for cloning modules onto workers,
//! and the [`ParamLayout`]/[`CompiledStep`] surface used by the compiled
//! executor (see `aimts_tensor::plan`).

use aimts_tensor::plan::{self, CompiledPlan, TraceError};
use aimts_tensor::Tensor;

/// A neural-network component.
///
/// Parameters are leaf variables created with `requires_grad()`; cloning a
/// `Tensor` clones the handle, so optimizers and checkpoints observe the
/// same storage the module computes with.
pub trait Module {
    /// Compute the output for `x`.
    fn forward(&self, x: &Tensor) -> Tensor;

    /// All trainable parameters (handles, not copies).
    fn parameters(&self) -> Vec<Tensor> {
        let mut named = Vec::new();
        self.named_parameters("", &mut named);
        named.into_iter().map(|(_, t)| t).collect()
    }

    /// Parameters with hierarchical names (`prefix.child.weight`), used by
    /// checkpointing.
    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>);

    /// Toggle training-time behaviour (dropout, batch-norm statistics).
    fn set_training(&self, _training: bool) {}

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    /// Every parameter value concatenated in `parameters()` order. The
    /// inverse of [`Module::load_flat`]; used to ship master weights to
    /// worker replicas. The buffer is arena-backed when the calling thread
    /// has a pool enabled (see [`aimts_tensor::arena`]), so per-round
    /// snapshots recycle instead of reallocating.
    fn flat_parameters(&self) -> Vec<f32> {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        let mut out = aimts_tensor::arena::take(total);
        for p in &params {
            out.extend_from_slice(&p.data());
        }
        out
    }

    /// Overwrite every parameter from a buffer produced by
    /// [`Module::flat_parameters`] (of a module with identical structure).
    /// Panics if the total length differs.
    fn load_flat(&self, flat: &[f32]) {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        assert_eq!(
            flat.len(),
            total,
            "load_flat length mismatch: buffer has {} values, module has {total} parameters",
            flat.len()
        );
        let mut off = 0;
        for p in &params {
            let n = p.numel();
            p.set_data(&flat[off..off + n]);
            off += n;
        }
    }

    /// Accumulated gradients concatenated in `parameters()` order, with
    /// zeros for parameters that have no gradient yet. Pairs with
    /// [`Module::accumulate_flat_gradient`] for gradient all-reduce.
    fn flat_gradient(&self) -> Vec<f32> {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        let mut out = aimts_tensor::arena::take(total);
        for p in &params {
            match p.grad() {
                Some(g) => out.extend_from_slice(&g),
                None => out.resize(out.len() + p.numel(), 0f32),
            }
        }
        out
    }

    /// Add a flat gradient buffer (as produced by [`Module::flat_gradient`])
    /// into the parameters' `.grad` slots. Panics if the length differs.
    fn accumulate_flat_gradient(&self, flat: &[f32]) {
        let params = self.parameters();
        let total: usize = params.iter().map(|p| p.numel()).sum();
        assert_eq!(
            flat.len(),
            total,
            "accumulate_flat_gradient length mismatch: buffer has {} values, module has {total} parameters",
            flat.len()
        );
        let mut off = 0;
        for p in &params {
            let n = p.numel();
            p.accumulate_grad(&flat[off..off + n]);
            off += n;
        }
    }

    /// Trace one training step of this module into a replayable plan (see
    /// [`aimts_tensor::plan::trace`]), pairing it with the module's frozen
    /// [`ParamLayout`] so flat parameter/gradient exchange during replay
    /// skips re-enumerating the tree. `build` must run exactly one eager
    /// step and return the graph outputs with the scalar loss first.
    fn compile_step(
        &self,
        inputs: &[Tensor],
        topology: usize,
        build: impl FnOnce() -> Vec<Tensor>,
    ) -> Result<CompiledStep, TraceError>
    where
        Self: Sized,
    {
        let layout = ParamLayout::of(self);
        let plan = plan::trace(inputs, topology, build)?;
        Ok(CompiledStep { plan, layout })
    }
}

/// Parameter enumeration frozen once: the handles, their flat-buffer
/// offsets, and the total scalar count.
///
/// `Module::parameters()` rebuilds the `named_parameters` tree (string
/// formatting included) on every call; the flat-exchange hot path calls it
/// four times per round. A `ParamLayout` captures that enumeration once —
/// parameter handles are `Arc`s onto the same storage, so data written
/// through the layout is visible to the module and vice versa. All four
/// flat methods are element-for-element identical to the [`Module`]
/// defaults.
pub struct ParamLayout {
    params: Vec<Tensor>,
    offsets: Vec<usize>,
    total: usize,
}

impl ParamLayout {
    /// Freeze `module`'s current parameter enumeration.
    pub fn of(module: &(impl Module + ?Sized)) -> Self {
        Self::from_params(module.parameters())
    }

    /// Freeze an explicit parameter list (must match `parameters()` order).
    pub fn from_params(params: Vec<Tensor>) -> Self {
        let mut offsets = Vec::with_capacity(params.len());
        let mut total = 0usize;
        for p in &params {
            offsets.push(total);
            total += p.numel();
        }
        ParamLayout {
            params,
            offsets,
            total,
        }
    }

    /// The frozen parameter handles, in `parameters()` order.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Flat-buffer offset of parameter `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total number of scalar parameters.
    pub fn total(&self) -> usize {
        self.total
    }

    /// [`Module::flat_parameters`] without the re-enumeration.
    pub fn flat_parameters(&self) -> Vec<f32> {
        let mut out = aimts_tensor::arena::take(self.total);
        for p in &self.params {
            out.extend_from_slice(&p.data());
        }
        out
    }

    /// [`Module::load_flat`] without the re-enumeration.
    pub fn load_flat(&self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.total,
            "load_flat length mismatch: buffer has {} values, layout has {} parameters",
            flat.len(),
            self.total
        );
        for (p, &off) in self.params.iter().zip(&self.offsets) {
            p.set_data(&flat[off..off + p.numel()]);
        }
    }

    /// [`Module::flat_gradient`] without the re-enumeration.
    pub fn flat_gradient(&self) -> Vec<f32> {
        let mut out = aimts_tensor::arena::take(self.total);
        for p in &self.params {
            match p.grad() {
                Some(g) => out.extend_from_slice(&g),
                None => out.resize(out.len() + p.numel(), 0f32),
            }
        }
        out
    }

    /// [`Module::accumulate_flat_gradient`] without the re-enumeration.
    pub fn accumulate_flat_gradient(&self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.total,
            "accumulate_flat_gradient length mismatch: buffer has {} values, layout has {} parameters",
            flat.len(),
            self.total
        );
        for (p, &off) in self.params.iter().zip(&self.offsets) {
            p.accumulate_grad(&flat[off..off + p.numel()]);
        }
    }

    /// Zero every parameter's accumulated gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// A traced training step plus the parameter layout it was traced against.
pub struct CompiledStep {
    /// The replayable instruction plan (forward + backward schedule).
    pub plan: CompiledPlan,
    /// Frozen parameter slots of the module the plan computes over.
    pub layout: ParamLayout,
}

/// Deep copy with fresh parameter (and internal-state) storage.
///
/// A replica shares *nothing* with the original: forward/backward on the
/// replica never touches the original's buffers or gradients, which is what
/// lets each data-parallel worker own a private copy of the model.
pub trait Replicate {
    fn replicate(&self) -> Self;

    /// Deep copy with *frozen* parameter storage: every parameter is
    /// detached into an unlocked `Storage::Hot` buffer with no autograd
    /// tracking, and mode-dependent layers are pinned to eval behaviour.
    ///
    /// A frozen copy computes bitwise-identical forward outputs (same ops,
    /// same accumulation order) but its forward acquires zero
    /// `Storage::Shared` locks, which is what lets the serving path share
    /// one immutable model across threads without lock traffic. Frozen
    /// copies cannot be trained: their parameters take no gradients.
    fn freeze(&self) -> Self;
}

/// Object-safe module-with-replication, used by containers that hold
/// heterogeneous children (e.g. `Sequential`). Requires `Send + Sync` so
/// boxed children can cross thread boundaries with their parent module.
pub trait AnyModule: Module + Send + Sync {
    /// Boxed deep copy (see [`Replicate`]).
    fn replicate_boxed(&self) -> Box<dyn AnyModule>;

    /// Boxed frozen copy (see [`Replicate::freeze`]).
    fn freeze_boxed(&self) -> Box<dyn AnyModule>;
}

impl<M: Module + Replicate + Send + Sync + 'static> AnyModule for M {
    fn replicate_boxed(&self) -> Box<dyn AnyModule> {
        Box::new(self.replicate())
    }

    fn freeze_boxed(&self) -> Box<dyn AnyModule> {
        Box::new(self.freeze())
    }
}

/// Join a prefix and a leaf name with `.` (no leading dot for roots).
pub(crate) fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
