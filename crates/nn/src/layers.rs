//! Layers: Linear, Conv1d/2d, BatchNorm1d, LayerNorm, Dropout, Sequential,
//! activations, and an MLP convenience wrapper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};
use aimts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::init::{kaiming_conv1d, kaiming_conv2d, kaiming_linear};
use crate::module::{join, AnyModule, Module, Replicate};

/// Fresh leaf variable with the same values (`requires_grad` copies data).
fn clone_param(p: &Tensor) -> Tensor {
    p.requires_grad()
}

/// Untracked `Storage::Hot` copy with the same values: reading it during a
/// forward acquires no locks (see [`Replicate::freeze`]).
fn frozen_param(p: &Tensor) -> Tensor {
    p.detach()
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer `y = x W + b`, accepting `[B, in]` or `[B, T, in]`.
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
}

impl Linear {
    /// New layer with Kaiming-uniform weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, seed: u64) -> Self {
        let weight = kaiming_linear(in_features, out_features, seed).requires_grad();
        let bias = bias.then(|| Tensor::zeros(&[out_features]).requires_grad());
        Linear { weight, bias }
    }

    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn forward(&self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "weight"), self.weight.clone()));
        if let Some(b) = &self.bias {
            out.push((join(prefix, "bias"), b.clone()));
        }
    }
}

impl Replicate for Linear {
    fn replicate(&self) -> Self {
        Linear {
            weight: clone_param(&self.weight),
            bias: self.bias.as_ref().map(clone_param),
        }
    }

    fn freeze(&self) -> Self {
        Linear {
            weight: frozen_param(&self.weight),
            bias: self.bias.as_ref().map(frozen_param),
        }
    }
}

// ---------------------------------------------------------------------------
// Convolutions
// ---------------------------------------------------------------------------

/// 1-D convolution layer over `[B, C_in, L]`.
pub struct Conv1d {
    weight: Tensor,
    bias: Option<Tensor>,
    spec: Conv1dSpec,
}

impl Conv1d {
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        spec: Conv1dSpec,
        bias: bool,
        seed: u64,
    ) -> Self {
        let weight = kaiming_conv1d(c_out, c_in, k, seed).requires_grad();
        let bias = bias.then(|| Tensor::zeros(&[c_out]).requires_grad());
        Conv1d { weight, bias, spec }
    }

    pub fn spec(&self) -> Conv1dSpec {
        self.spec
    }
}

impl Module for Conv1d {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.conv1d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "weight"), self.weight.clone()));
        if let Some(b) = &self.bias {
            out.push((join(prefix, "bias"), b.clone()));
        }
    }
}

impl Replicate for Conv1d {
    fn replicate(&self) -> Self {
        Conv1d {
            weight: clone_param(&self.weight),
            bias: self.bias.as_ref().map(clone_param),
            spec: self.spec,
        }
    }

    fn freeze(&self) -> Self {
        Conv1d {
            weight: frozen_param(&self.weight),
            bias: self.bias.as_ref().map(frozen_param),
            spec: self.spec,
        }
    }
}

/// 2-D convolution layer over `[B, C_in, H, W]`.
pub struct Conv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
}

impl Conv2d {
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        spec: Conv2dSpec,
        bias: bool,
        seed: u64,
    ) -> Self {
        let weight = kaiming_conv2d(c_out, c_in, k, k, seed).requires_grad();
        let bias = bias.then(|| Tensor::zeros(&[c_out]).requires_grad());
        Conv2d { weight, bias, spec }
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.conv2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "weight"), self.weight.clone()));
        if let Some(b) = &self.bias {
            out.push((join(prefix, "bias"), b.clone()));
        }
    }
}

impl Replicate for Conv2d {
    fn replicate(&self) -> Self {
        Conv2d {
            weight: clone_param(&self.weight),
            bias: self.bias.as_ref().map(clone_param),
            spec: self.spec,
        }
    }

    fn freeze(&self) -> Self {
        Conv2d {
            weight: frozen_param(&self.weight),
            bias: self.bias.as_ref().map(frozen_param),
            spec: self.spec,
        }
    }
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

/// Batch normalization over the channel dimension of `[B, C, L]`.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates (momentum 0.1); evaluation mode uses the running estimates.
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Mutex<Vec<f32>>,
    running_var: Mutex<Vec<f32>>,
    training: AtomicBool,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm1d {
    pub fn new(channels: usize) -> Self {
        BatchNorm1d {
            gamma: Tensor::ones(&[1, channels, 1]).requires_grad(),
            beta: Tensor::zeros(&[1, channels, 1]).requires_grad(),
            running_mean: Mutex::new(vec![0.0; channels]),
            running_var: Mutex::new(vec![1.0; channels]),
            training: AtomicBool::new(true),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Module for BatchNorm1d {
    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "BatchNorm1d expects [B, C, L]");
        assert_eq!(x.shape()[1], self.channels, "BatchNorm1d channel mismatch");
        if self.training.load(Ordering::Relaxed) {
            let mean = x.mean_axis(0, true).mean_axis(2, true); // [1, C, 1]
            let centered = x.sub(&mean);
            let var = centered.square().mean_axis(0, true).mean_axis(2, true);
            // Update running statistics (detached).
            {
                let m = mean.to_vec();
                let v = var.to_vec();
                let mut rm = lock(&self.running_mean);
                let mut rv = lock(&self.running_var);
                for c in 0..self.channels {
                    rm[c] = (1.0 - self.momentum) * rm[c] + self.momentum * m[c];
                    rv[c] = (1.0 - self.momentum) * rv[c] + self.momentum * v[c];
                }
            }
            let xhat = centered.div(&var.add_scalar(self.eps).sqrt());
            xhat.mul(&self.gamma).add(&self.beta)
        } else {
            let rm = Tensor::from_vec(lock(&self.running_mean).clone(), &[1, self.channels, 1]);
            let rv = Tensor::from_vec(lock(&self.running_var).clone(), &[1, self.channels, 1]);
            let xhat = x.sub(&rm).div(&rv.add_scalar(self.eps).sqrt());
            xhat.mul(&self.gamma).add(&self.beta)
        }
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "gamma"), self.gamma.clone()));
        out.push((join(prefix, "beta"), self.beta.clone()));
    }

    fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }
}

impl Replicate for BatchNorm1d {
    fn replicate(&self) -> Self {
        // Running statistics are copied but not synced back: per-replica
        // drift is the usual data-parallel BN approximation.
        BatchNorm1d {
            gamma: clone_param(&self.gamma),
            beta: clone_param(&self.beta),
            running_mean: Mutex::new(lock(&self.running_mean).clone()),
            running_var: Mutex::new(lock(&self.running_var).clone()),
            training: AtomicBool::new(self.training.load(Ordering::Relaxed)),
            momentum: self.momentum,
            eps: self.eps,
            channels: self.channels,
        }
    }

    fn freeze(&self) -> Self {
        // A frozen copy always normalizes with the running estimates; there
        // is no batch to take statistics from at serving time.
        BatchNorm1d {
            gamma: frozen_param(&self.gamma),
            beta: frozen_param(&self.beta),
            running_mean: Mutex::new(lock(&self.running_mean).clone()),
            running_var: Mutex::new(lock(&self.running_var).clone()),
            training: AtomicBool::new(false),
            momentum: self.momentum,
            eps: self.eps,
            channels: self.channels,
        }
    }
}

/// Layer normalization over the last dimension.
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::ones(&[dim]).requires_grad(),
            beta: Tensor::zeros(&[dim]).requires_grad(),
            eps: 1e-5,
            dim,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            *x.shape().last().expect("LayerNorm on 0-d input"), // aimts-lint: allow(A001, forward() inputs are batched activations; 0-d cannot occur)
            self.dim,
            "LayerNorm dim mismatch"
        );
        let last = x.ndim() - 1;
        let mean = x.mean_axis(last, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(last, true);
        let xhat = centered.div(&var.add_scalar(self.eps).sqrt());
        xhat.mul(&self.gamma).add(&self.beta)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "gamma"), self.gamma.clone()));
        out.push((join(prefix, "beta"), self.beta.clone()));
    }
}

impl Replicate for LayerNorm {
    fn replicate(&self) -> Self {
        LayerNorm {
            gamma: clone_param(&self.gamma),
            beta: clone_param(&self.beta),
            eps: self.eps,
            dim: self.dim,
        }
    }

    fn freeze(&self) -> Self {
        LayerNorm {
            gamma: frozen_param(&self.gamma),
            beta: frozen_param(&self.beta),
            eps: self.eps,
            dim: self.dim,
        }
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: active in training mode, identity in eval mode.
pub struct Dropout {
    p: f32,
    training: AtomicBool,
    rng: Mutex<StdRng>,
}

impl Dropout {
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: AtomicBool::new(true),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Tensor) -> Tensor {
        // aimts-lint: allow(A004, p == 0.0 is the documented “dropout disabled” sentinel set verbatim by the constructor)
        if !self.training.load(Ordering::Relaxed) || self.p == 0.0 {
            return x.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut rng = lock(&self.rng);
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        drop(rng);
        x.mul(&Tensor::from_vec(mask, x.shape()))
    }

    fn named_parameters(&self, _prefix: &str, _out: &mut Vec<(String, Tensor)>) {}

    fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }
}

impl Replicate for Dropout {
    fn replicate(&self) -> Self {
        // The replica continues from the current RNG state so replicas made
        // at different times draw different masks.
        Dropout {
            p: self.p,
            training: AtomicBool::new(self.training.load(Ordering::Relaxed)),
            rng: Mutex::new(lock(&self.rng).clone()),
        }
    }

    fn freeze(&self) -> Self {
        // Frozen dropout is a permanent identity.
        Dropout {
            p: self.p,
            training: AtomicBool::new(false),
            rng: Mutex::new(lock(&self.rng).clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// Stateless activation functions as modules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    Relu,
    Gelu,
    Tanh,
    Sigmoid,
    LeakyRelu(f32),
    Identity,
}

impl Module for Activation {
    fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.relu(),
            Activation::Gelu => x.gelu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::LeakyRelu(a) => x.leaky_relu(*a),
            Activation::Identity => x.clone(),
        }
    }

    fn named_parameters(&self, _prefix: &str, _out: &mut Vec<(String, Tensor)>) {}
}

impl Replicate for Activation {
    fn replicate(&self) -> Self {
        *self
    }

    fn freeze(&self) -> Self {
        *self
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

/// Sequential container applying children in order.
pub struct Sequential {
    children: Vec<Box<dyn AnyModule>>,
}

impl Sequential {
    pub fn new(children: Vec<Box<dyn AnyModule>>) -> Self {
        Sequential { children }
    }

    pub fn push(&mut self, m: Box<dyn AnyModule>) {
        self.children.push(m);
    }

    pub fn len(&self) -> usize {
        self.children.len()
    }

    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.children.iter().fold(x.clone(), |h, m| m.forward(&h))
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        for (i, m) in self.children.iter().enumerate() {
            m.named_parameters(&join(prefix, &i.to_string()), out);
        }
    }

    fn set_training(&self, training: bool) {
        for m in &self.children {
            m.set_training(training);
        }
    }
}

impl Replicate for Sequential {
    fn replicate(&self) -> Self {
        Sequential {
            children: self.children.iter().map(|m| m.replicate_boxed()).collect(),
        }
    }

    fn freeze(&self) -> Self {
        Sequential {
            children: self.children.iter().map(|m| m.freeze_boxed()).collect(),
        }
    }
}

/// Multi-layer perceptron: `dims[0] -> dims[1] -> ... -> dims.last()` with
/// the given activation between layers (none after the last).
pub struct Mlp {
    seq: Sequential,
}

impl Mlp {
    pub fn new(dims: &[usize], act: Activation, seed: u64) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let mut children: Vec<Box<dyn AnyModule>> = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            children.push(Box::new(Linear::new(
                w[0],
                w[1],
                true,
                seed.wrapping_add(i as u64),
            )));
            if i + 2 < dims.len() {
                children.push(Box::new(act));
            }
        }
        Mlp {
            seq: Sequential::new(children),
        }
    }
}

impl Module for Mlp {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.seq.forward(x)
    }

    fn named_parameters(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.seq.named_parameters(prefix, out);
    }

    fn set_training(&self, training: bool) {
        self.seq.set_training(training);
    }
}

impl Replicate for Mlp {
    fn replicate(&self) -> Self {
        Mlp {
            seq: self.seq.replicate(),
        }
    }

    fn freeze(&self) -> Self {
        Mlp {
            seq: self.seq.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_2d_and_3d() {
        let l = Linear::new(4, 6, true, 0);
        assert_eq!(l.forward(&Tensor::randn(&[2, 4], 1)).shape(), &[2, 6]);
        assert_eq!(l.forward(&Tensor::randn(&[2, 3, 4], 1)).shape(), &[2, 3, 6]);
        assert_eq!(l.parameters().len(), 2);
        assert_eq!(l.num_parameters(), 4 * 6 + 6);
    }

    #[test]
    fn conv1d_layer_same_length() {
        let c = Conv1d::new(2, 5, 3, Conv1dSpec::same(3, 1), true, 0);
        let y = c.forward(&Tensor::randn(&[3, 2, 11], 1));
        assert_eq!(y.shape(), &[3, 5, 11]);
    }

    #[test]
    fn conv2d_layer_downsample() {
        let c = Conv2d::new(
            3,
            8,
            3,
            Conv2dSpec {
                stride: 2,
                padding: 1,
            },
            true,
            0,
        );
        let y = c.forward(&Tensor::randn(&[2, 3, 16, 16], 1));
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn batchnorm_normalizes_in_training() {
        let bn = BatchNorm1d::new(2);
        let x = Tensor::randn(&[8, 2, 10], 3).affine(3.0, 5.0);
        let y = bn.forward(&x);
        let v = y.to_vec();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm1d::new(1);
        let x = Tensor::full(&[4, 1, 4], 10.0);
        // Repeated training passes move the running mean toward 10.
        for _ in 0..60 {
            let _ = bn.forward(&x);
        }
        bn.set_training(false);
        let y = bn.forward(&x);
        // In eval mode a constant input near the running mean maps near 0.
        assert!(y.to_vec().iter().all(|v| v.abs() < 2.0));
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(8);
        let y = ln.forward(&Tensor::randn(&[4, 8], 5).affine(2.0, -3.0));
        let v = y.to_vec();
        for r in 0..4 {
            let row = &v[r * 8..(r + 1) * 8];
            let m: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(m.abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::randn(&[10], 1);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let d = Dropout::new(0.5, 0);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x).to_vec();
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        assert!(y.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert!((300..700).contains(&zeros), "zeros {zeros}");
    }

    #[test]
    fn mlp_shapes_and_params() {
        let m = Mlp::new(&[8, 16, 4], Activation::Relu, 0);
        let y = m.forward(&Tensor::randn(&[2, 8], 1));
        assert_eq!(y.shape(), &[2, 4]);
        assert_eq!(m.parameters().len(), 4);
        let mut names = Vec::new();
        m.named_parameters("head", &mut names);
        assert!(names.iter().any(|(n, _)| n == "head.0.weight"));
    }

    #[test]
    fn sequential_composition() {
        let s = Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, 0)),
            Box::new(Activation::Gelu),
            Box::new(Linear::new(8, 2, false, 1)),
        ]);
        assert_eq!(s.forward(&Tensor::randn(&[5, 4], 2)).shape(), &[5, 2]);
        assert_eq!(s.parameters().len(), 3);
    }
}
