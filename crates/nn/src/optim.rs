//! Optimizers: SGD (with momentum) and Adam, plus the shared trait the
//! schedulers drive.

use aimts_tensor::Tensor;

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update using the parameters' accumulated gradients.
    fn step(&mut self);
    /// Clear every parameter's gradient.
    fn zero_grad(&self);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Override the learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f32);
}

/// Global L2 norm of the parameters' accumulated gradients, computed in
/// `f64` so it is non-finite exactly when some gradient value is
/// (`f32::MAX` squared is far below the `f64` ceiling, so finite inputs
/// can never overflow the accumulator). The numerical-anomaly guard uses
/// this as its gradient finiteness check.
pub fn grad_norm(params: &[Tensor]) -> f32 {
    let mut sq = 0f64;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>();
        }
    }
    (sq as f32).sqrt()
}

/// Clip the global L2 norm of the parameters' gradients to `max_norm`,
/// rescaling in place when it is exceeded. Returns the pre-clip norm.
/// Call between `backward()` and `step()`.
///
/// A non-finite pre-clip norm (some gradient is `NaN`/`±inf`) disables the
/// rescale — scaling cannot repair non-finite values, and the caller's
/// guard is expected to skip the step instead.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grad_norm(params);
    if norm.is_finite() && norm > max_norm {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                g.iter_mut().for_each(|x| *x *= scale);
                p.set_grad(&g);
            }
        }
        debug_assert!(
            grad_norm(params) <= max_norm * 1.001,
            "clip_grad_norm post-condition violated: rescaled norm exceeds max_norm"
        );
    }
    norm
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd::with_momentum(params, lr, 0.0)
    }

    pub fn with_momentum(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0f32; p.numel()]).collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let Some(g) = p.grad() else { continue };
            p.update_data(|data| {
                for ((x, vel), gi) in data.iter_mut().zip(v.iter_mut()).zip(&g) {
                    *vel = self.momentum * *vel + gi;
                    *x -= self.lr * *vel;
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Serializable snapshot of an [`Adam`] optimizer's mutable state
/// (checkpointed alongside the model so a resumed run takes the same
/// update steps it would have taken uninterrupted).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment buffers, one per parameter.
    pub m: Vec<Vec<f32>>,
    /// Second-moment buffers, one per parameter.
    pub v: Vec<Vec<f32>>,
}

/// Adam (Kingma & Ba, 2014) with optional decoupled weight decay.
///
/// The paper pre-trains with Adam at `7e-3` and fine-tunes at `1e-3`
/// (§V-A.3); both flows use this implementation.
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Adam::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    pub fn with_config(
        params: Vec<Tensor>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let m = params.iter().map(|p| vec![0f32; p.numel()]).collect();
        let v = params.iter().map(|p| vec![0f32; p.numel()]).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            m,
            v,
            t: 0,
        }
    }

    /// Snapshot everything a bit-exact resume needs: hyper-parameters
    /// (including the scheduler-driven live `lr`), the step counter that
    /// feeds bias correction, and both moment buffers.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a snapshot taken by [`Adam::export_state`]. Fails (without
    /// touching the optimizer) when the moment buffers do not match this
    /// optimizer's parameter layout.
    pub fn restore_state(&mut self, state: &AdamState) -> Result<(), String> {
        let shapes: Vec<usize> = self.params.iter().map(|p| p.numel()).collect();
        let got_m: Vec<usize> = state.m.iter().map(|b| b.len()).collect();
        let got_v: Vec<usize> = state.v.iter().map(|b| b.len()).collect();
        if got_m != shapes || got_v != shapes {
            return Err(format!(
                "Adam state layout mismatch: optimizer has buffers {shapes:?}, \
                 checkpoint has m {got_m:?} / v {got_v:?}"
            ));
        }
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.weight_decay = state.weight_decay;
        self.t = state.t;
        self.m = state.m.clone();
        self.v = state.v.clone();
        Ok(())
    }

    /// Gradient L2 norm across all parameters (diagnostics).
    pub fn grad_norm(&self) -> f32 {
        grad_norm(&self.params)
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let Some(g) = p.grad() else { continue };
            p.update_data(|data| {
                for (i, x) in data.iter_mut().enumerate() {
                    let gi = g[i] + self.weight_decay * *x;
                    m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                    v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    *x -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimts_tensor::Tensor;

    /// Minimize (x - 3)^2 and check convergence.
    fn quadratic_converges(mut opt: impl Optimizer, x: Tensor, iters: usize) -> f32 {
        for _ in 0..iters {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).square().sum_all();
            loss.backward();
            opt.step();
        }
        x.to_vec()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        let final_x = quadratic_converges(Sgd::new(vec![x.clone()], 0.1), x, 100);
        assert!((final_x - 3.0).abs() < 1e-3, "got {final_x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        let final_x = quadratic_converges(Sgd::with_momentum(vec![x.clone()], 0.05, 0.9), x, 200);
        assert!((final_x - 3.0).abs() < 1e-2, "got {final_x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        let final_x = quadratic_converges(Adam::new(vec![x.clone()], 0.1), x, 300);
        assert!((final_x - 3.0).abs() < 1e-2, "got {final_x}");
    }

    #[test]
    fn adam_skips_params_without_grad() {
        let x = Tensor::from_vec(vec![5.0], &[1]).requires_grad();
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step(); // no gradient accumulated yet
        assert_eq!(x.to_vec(), vec![5.0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let x = Tensor::from_vec(vec![5.0], &[1]).requires_grad();
        let mut opt = Adam::with_config(vec![x.clone()], 0.1, 0.9, 0.999, 1e-8, 0.1);
        for _ in 0..50 {
            opt.zero_grad();
            // Loss independent of x except through decay: use tiny grad.
            let loss = x.mul_scalar(1e-6).sum_all();
            loss.backward();
            opt.step();
        }
        assert!(x.to_vec()[0] < 5.0);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        x.mul(&Tensor::from_vec(vec![3.0, 4.0], &[2]))
            .sum_all()
            .backward();
        // grad = [3, 4], norm 5.
        let pre = super::clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = x.grad().unwrap();
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        // Below the threshold nothing changes.
        let pre2 = super::clip_grad_norm(std::slice::from_ref(&x), 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert_eq!(x.grad().unwrap(), g);
    }

    #[test]
    fn clip_grad_norm_leaves_nonfinite_gradients_alone() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        x.set_grad(&[f32::NAN, 3.0]);
        let pre = super::clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!(pre.is_nan());
        // The gradient is untouched: scaling cannot repair NaN, the caller
        // must skip the step.
        let g = x.grad().unwrap();
        assert!(g[0].is_nan());
        assert_eq!(g[1], 3.0);

        x.set_grad(&[f32::INFINITY, 0.0]);
        assert!(super::clip_grad_norm(std::slice::from_ref(&x), 1.0).is_infinite());
        assert!(x.grad().unwrap()[0].is_infinite());
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_exactly() {
        let run = |resume_at: Option<usize>| -> Vec<f32> {
            let x = Tensor::from_vec(vec![0.0, 0.5], &[2]).requires_grad();
            let mut opt = Adam::new(vec![x.clone()], 0.05);
            let mut snapshot = None;
            for i in 0..20 {
                if Some(i) == resume_at {
                    // Simulate a crash: rebuild optimizer and state from the
                    // snapshot and keep going.
                    let (state, data): &(AdamState, Vec<f32>) = snapshot.as_ref().unwrap();
                    x.set_data(data);
                    opt = Adam::new(vec![x.clone()], 999.0);
                    opt.restore_state(state).unwrap();
                }
                opt.zero_grad();
                x.add_scalar(-3.0).square().sum_all().backward();
                opt.step();
                if i + 1 == 10 {
                    snapshot = Some((opt.export_state(), x.to_vec()));
                }
            }
            x.to_vec()
        };
        assert_eq!(run(None), run(Some(10)));
    }

    #[test]
    fn adam_restore_rejects_wrong_layout() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let state = Adam::new(vec![x], 0.1).export_state();
        let y = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
        let mut other = Adam::new(vec![y], 0.1);
        assert!(other.restore_state(&state).is_err());
    }

    #[test]
    fn lr_get_set() {
        let mut opt = Adam::new(vec![], 0.5);
        assert_eq!(opt.lr(), 0.5);
        opt.set_lr(0.25);
        assert_eq!(opt.lr(), 0.25);
    }
}
