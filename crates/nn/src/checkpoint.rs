//! JSON checkpointing of named parameters.
//!
//! The pre-training stage saves the TS encoder here and the fine-tuning
//! stage restores it — mirroring the paper's transfer of the pre-trained
//! encoder into each downstream task (Fig. 3b).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use aimts_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Serialized tensor: shape + row-major data.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TensorState {
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

/// Name → tensor state, ordered for reproducible files.
pub type StateDict = BTreeMap<String, TensorState>;

/// Snapshot named parameters into a [`StateDict`].
pub fn state_dict_of(named: &[(String, Tensor)]) -> StateDict {
    named
        .iter()
        .map(|(n, t)| {
            (
                n.clone(),
                TensorState {
                    shape: t.shape().to_vec(),
                    data: t.to_vec(),
                },
            )
        })
        .collect()
}

/// Write a state dict as JSON.
pub fn save_state_dict(path: &Path, named: &[(String, Tensor)]) -> io::Result<()> {
    let sd = state_dict_of(named);
    let json = serde_json::to_string(&sd).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Read a state dict from JSON and copy values into matching parameters.
///
/// Every parameter in `named` must be present in the file with the same
/// shape; extra file entries are ignored (allows loading an encoder out of
/// a larger model checkpoint).
pub fn load_state_dict(path: &Path, named: &[(String, Tensor)]) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let sd: StateDict = serde_json::from_str(&json).map_err(io::Error::other)?;
    apply_state_dict(&sd, named)
}

/// Copy a [`StateDict`]'s values into matching parameters.
pub fn apply_state_dict(sd: &StateDict, named: &[(String, Tensor)]) -> io::Result<()> {
    for (name, tensor) in named {
        let state = sd.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("missing parameter `{name}`"),
            )
        })?;
        if state.shape != tensor.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for `{name}`: checkpoint {:?} vs model {:?}",
                    state.shape,
                    tensor.shape()
                ),
            ));
        }
        tensor.set_data(&state.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Module};

    #[test]
    fn roundtrip_preserves_weights() {
        let dir = std::env::temp_dir().join("aimts_nn_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lin.json");

        let a = Linear::new(3, 2, true, 42);
        let mut named = Vec::new();
        a.named_parameters("enc", &mut named);
        save_state_dict(&path, &named).unwrap();

        let b = Linear::new(3, 2, true, 7);
        let mut named_b = Vec::new();
        b.named_parameters("enc", &mut named_b);
        assert_ne!(named[0].1.to_vec(), named_b[0].1.to_vec());
        load_state_dict(&path, &named_b).unwrap();
        assert_eq!(named[0].1.to_vec(), named_b[0].1.to_vec());
        assert_eq!(named[1].1.to_vec(), named_b[1].1.to_vec());
    }

    #[test]
    fn missing_parameter_errors() {
        let sd = StateDict::new();
        let lin = Linear::new(2, 2, false, 0);
        let mut named = Vec::new();
        lin.named_parameters("x", &mut named);
        assert!(apply_state_dict(&sd, &named).is_err());
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Linear::new(3, 2, false, 0);
        let mut named = Vec::new();
        a.named_parameters("m", &mut named);
        let sd = state_dict_of(&named);
        let b = Linear::new(3, 4, false, 0);
        let mut named_b = Vec::new();
        b.named_parameters("m", &mut named_b);
        assert!(apply_state_dict(&sd, &named_b).is_err());
    }
}
