//! Fault-tolerant checkpointing.
//!
//! Two surfaces live here:
//!
//! 1. The original **JSON state-dict** API ([`save_state_dict`] /
//!    [`load_state_dict`]) used to hand a pre-trained encoder to the
//!    fine-tuning stage (paper Fig. 3b). Saves now go through the same
//!    atomic write path as binary checkpoints, so a crash mid-save can no
//!    longer leave a corrupt file at the target path.
//! 2. A **versioned binary training-checkpoint format** ([`Checkpoint`])
//!    that captures *everything* a killed pre-training run needs to resume
//!    bit-exactly: model parameters, optimizer moments, scheduler state,
//!    and RNG stream state, each in its own CRC32-guarded section.
//!
//! ## Binary layout (version 1, all integers little-endian)
//!
//! ```text
//! header (36 bytes):
//!   magic        [u8; 8]  = b"AIMTSCKP"
//!   version      u32      = 1
//!   step         u64        optimizer steps taken
//!   epoch        u64        epochs completed
//!   n_sections   u32
//!   header_crc   u32        CRC32 of the 32 bytes above
//! section (repeated n_sections times):
//!   name_len     u32
//!   name         [u8; name_len]   UTF-8
//!   payload_len  u64
//!   section_crc  u32        CRC32 of name_len ‖ name ‖ payload_len ‖ payload
//!   payload      [u8; payload_len]
//! ```
//!
//! Every load validates the magic, version, header CRC, and each section's
//! CRC before returning; any truncation or bit corruption yields a typed
//! [`CheckpointError`] naming the failing section — never a panic, never a
//! silently-garbage model. Floats are stored as raw IEEE-754 bit patterns,
//! so `NaN` payloads and `±inf` round-trip bit-exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use aimts_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::optim::AdamState;
use crate::scheduler::SchedulerState;

/// Current binary format version.
pub const FORMAT_VERSION: u32 = 1;

/// File magic identifying an AimTS binary checkpoint.
pub const MAGIC: [u8; 8] = *b"AIMTSCKP";

/// Fixed header length in bytes (magic + version + step + epoch + count + CRC).
pub const HEADER_LEN: usize = 36;

/// Conventional section names used by the training loops.
pub mod sections {
    /// Named model parameters.
    pub const PARAMS: &str = "params";
    /// Adam moments + step counter.
    pub const ADAM: &str = "adam";
    /// Learning-rate schedule state.
    pub const SCHEDULER: &str = "scheduler";
    /// Training-loop bookkeeping (RNG stream, counters, loss history).
    pub const TRAIN: &str = "train";
    /// Model architecture hyper-parameters (serving bundles): enough to
    /// reconstruct the module tree before applying [`PARAMS`].
    pub const ARCH: &str = "arch";
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpoint failed to save, load, or apply.
///
/// Loads are total: every variant is returned, never panicked. Corruption
/// variants name the section (or byte region) that failed validation so
/// fault reports are actionable.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not an AimTS checkpoint.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The fixed header failed its CRC32 check.
    HeaderCorrupt,
    /// The file ends before `context` could be read in full.
    Truncated { context: String },
    /// Section `section` failed its CRC32 check (bit corruption).
    ChecksumMismatch { section: String },
    /// A section decoded to structurally invalid contents.
    Malformed { context: String, detail: String },
    /// A required section is absent from the file.
    MissingSection { section: String },
    /// The checkpoint is valid but does not fit the consumer (shape or
    /// layout mismatch, wrong scheduler kind, wrong worker topology, …).
    Incompatible { detail: String },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an AimTS checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads <= {supported})"
            ),
            CheckpointError::HeaderCorrupt => write!(f, "checkpoint header failed CRC32 check"),
            CheckpointError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "section `{section}` failed CRC32 check (corrupt)")
            }
            CheckpointError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            CheckpointError::MissingSection { section } => {
                write!(f, "checkpoint has no `{section}` section")
            }
            CheckpointError::Incompatible { detail } => {
                write!(f, "checkpoint incompatible with this run: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, table-driven)
// ---------------------------------------------------------------------------

/// CRC32 (IEEE) of `bytes` — the checksum guarding every section.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(path: &Path) -> PathBuf {
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    let tag = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{file}.{}.{tag}.tmp", std::process::id()))
}

/// Durably replace the file at `path` with `bytes`: write a sibling temp
/// file, `fsync` it, atomically rename over the target, and `fsync` the
/// parent directory. A crash (or error) at any point leaves either the old
/// file or the new file at `path` — never a partial mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_inner(path, bytes, None)
}

/// Fault-injection variant of [`atomic_write`] that simulates a crash by
/// failing after `fail_after` bytes have been written to the temp file.
/// Exists so crash-consistency tests can prove a failed save never touches
/// the previous checkpoint; not intended for production use.
pub fn atomic_write_failing_after(path: &Path, bytes: &[u8], fail_after: usize) -> io::Result<()> {
    atomic_write_inner(path, bytes, Some(fail_after))
}

fn atomic_write_inner(path: &Path, bytes: &[u8], fail_after: Option<usize>) -> io::Result<()> {
    let tmp = temp_path_for(path);
    let result = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        match fail_after {
            Some(limit) if limit < bytes.len() => {
                f.write_all(&bytes[..limit])?;
                return Err(io::Error::other(
                    "injected crash: write interrupted mid-checkpoint",
                ));
            }
            _ => f.write_all(bytes)?,
        }
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Failing to open the parent (e.g.
        // an exotic filesystem) is not worth failing the save over, but a
        // failed sync on an opened directory is a real durability error.
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = fs::File::open(dir) {
                d.sync_all()?;
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp); // aimts-lint: allow(A005, best-effort cleanup: the write already failed and its error is returned)
    }
    result
}

// ---------------------------------------------------------------------------
// Section byte codecs
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder for section payloads.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    pub fn new() -> Self {
        SectionWriter::default()
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Store a float as its raw bit pattern (bit-exact for all values).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_f32_slice(&mut self, xs: &[f32]) {
        self.put_u64(xs.len() as u64);
        self.buf.reserve(xs.len() * 4);
        for x in xs {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    pub fn put_u32_slice(&mut self, xs: &[u32]) {
        self.put_u64(xs.len() as u64);
        self.buf.reserve(xs.len() * 4);
        for x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder for section payloads. Every method
/// returns a typed error naming the owning section instead of panicking.
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

/// First 4 bytes of a slice as an array. Callers pass slices whose length
/// was just checked (or produced by `chunks_exact(4)`), so indexing cannot
/// fail; this avoids `try_into().unwrap()` in load paths that must never
/// panic (lint A001).
#[inline]
fn le4(b: &[u8]) -> [u8; 4] {
    [b[0], b[1], b[2], b[3]]
}

/// First 8 bytes of a slice as an array; see [`le4`].
#[inline]
fn le8(b: &[u8]) -> [u8; 8] {
    [b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]
}

impl<'a> SectionReader<'a> {
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        SectionReader {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated {
                context: format!("section `{}` ({what})", self.section),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(le4(self.take(4, what)?)))
    }

    pub fn get_u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(le8(self.take(8, what)?)))
    }

    pub fn get_f32(&mut self, what: &str) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.get_u32(what)?))
    }

    pub fn get_usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed {
            context: format!("section `{}`", self.section),
            detail: format!("{what} = {v} does not fit in usize"),
        })
    }

    pub fn get_str(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Malformed {
            context: format!("section `{}`", self.section),
            detail: format!("{what} is not valid UTF-8"),
        })
    }

    /// A length-prefixed f32 slice. The length is validated against the
    /// remaining bytes *before* allocating.
    pub fn get_f32_slice(&mut self, what: &str) -> Result<Vec<f32>, CheckpointError> {
        let len = self.get_usize(what)?;
        let bytes = self.take(len.saturating_mul(4), what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(le4(c))))
            .collect())
    }

    pub fn get_u32_slice(&mut self, what: &str) -> Result<Vec<u32>, CheckpointError> {
        let len = self.get_usize(what)?;
        let bytes = self.take(len.saturating_mul(4), what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(le4(c)))
            .collect())
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Malformed {
                context: format!("section `{}`", self.section),
                detail: format!(
                    "{} trailing bytes after the last field",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The container
// ---------------------------------------------------------------------------

/// An in-memory binary checkpoint: header counters plus named, ordered,
/// individually-checksummed sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Optimizer steps taken when this snapshot was cut.
    pub step: u64,
    /// Epochs completed when this snapshot was cut.
    pub epoch: u64,
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    pub fn new(step: u64, epoch: u64) -> Self {
        Checkpoint {
            step,
            epoch,
            sections: Vec::new(),
        }
    }

    /// Append a named section. Names should be unique; lookups return the
    /// first match.
    pub fn push_section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_string(), payload));
    }

    /// Section payload by name.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Section payload by name, or a typed [`CheckpointError::MissingSection`].
    pub fn require_section(&self, name: &str) -> Result<&[u8], CheckpointError> {
        self.section(name)
            .ok_or_else(|| CheckpointError::MissingSection {
                section: name.to_string(),
            })
    }

    /// Names in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Serialize to the on-disk byte layout (header + CRC-guarded sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + self
                    .sections
                    .iter()
                    .map(|(n, p)| 16 + n.len() + p.len())
                    .sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let hcrc = crc32(&out);
        out.extend_from_slice(&hcrc.to_le_bytes());
        for (name, payload) in &self.sections {
            let name_len = (name.len() as u32).to_le_bytes();
            let payload_len = (payload.len() as u64).to_le_bytes();
            let mut crc_input = Vec::with_capacity(4 + name.len() + 8 + payload.len());
            crc_input.extend_from_slice(&name_len);
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(&payload_len);
            crc_input.extend_from_slice(payload);
            let crc = crc32(&crc_input);
            out.extend_from_slice(&name_len);
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&payload_len);
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parse and fully validate an on-disk byte buffer. Every CRC is
    /// checked before any payload is handed out.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated {
                context: "header".to_string(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let u32_at = |off: usize| u32::from_le_bytes(le4(&bytes[off..off + 4]));
        let u64_at = |off: usize| u64::from_le_bytes(le8(&bytes[off..off + 8]));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if crc32(&bytes[..HEADER_LEN - 4]) != u32_at(HEADER_LEN - 4) {
            return Err(CheckpointError::HeaderCorrupt);
        }
        let step = u64_at(12);
        let epoch = u64_at(20);
        let n_sections = u32_at(28) as usize;

        let mut sections = Vec::with_capacity(n_sections.min(64));
        let mut pos = HEADER_LEN;
        for i in 0..n_sections {
            let ordinal = format!("section {} of {n_sections}", i + 1);
            let take = |pos: &mut usize, n: usize, what: &str| -> Result<&[u8], CheckpointError> {
                if bytes.len() - *pos < n {
                    return Err(CheckpointError::Truncated {
                        context: format!("{ordinal} ({what})"),
                    });
                }
                let out = &bytes[*pos..*pos + n];
                *pos += n;
                Ok(out)
            };
            let record_start = pos;
            let name_len = u32::from_le_bytes(le4(take(&mut pos, 4, "name length")?)) as usize;
            let name_bytes = take(&mut pos, name_len, "name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Malformed {
                    context: ordinal.clone(),
                    detail: "section name is not valid UTF-8".to_string(),
                })?
                .to_string();
            let payload_len = u64::from_le_bytes(le8(take(&mut pos, 8, "payload length")?));
            let payload_len =
                usize::try_from(payload_len).map_err(|_| CheckpointError::Malformed {
                    context: format!("{ordinal} (`{name}`)"),
                    detail: format!("payload length {payload_len} does not fit in usize"),
                })?;
            let stored_crc = u32::from_le_bytes(le4(take(&mut pos, 4, "checksum")?));
            if bytes.len() - pos < payload_len {
                return Err(CheckpointError::Truncated {
                    context: format!("section `{name}` payload"),
                });
            }
            let payload = &bytes[pos..pos + payload_len];
            pos += payload_len;
            // CRC covers the whole record sans the checksum field itself, so
            // corruption in the section *header* is caught too.
            let mut crc_input = Vec::with_capacity(4 + name_len + 8 + payload_len);
            crc_input.extend_from_slice(&bytes[record_start..record_start + 4 + name_len]);
            crc_input.extend_from_slice(&(payload_len as u64).to_le_bytes());
            crc_input.extend_from_slice(payload);
            if crc32(&crc_input) != stored_crc {
                return Err(CheckpointError::ChecksumMismatch { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        if pos != bytes.len() {
            return Err(CheckpointError::Malformed {
                context: "file".to_string(),
                detail: format!(
                    "{} trailing bytes after the last section",
                    bytes.len() - pos
                ),
            });
        }
        Ok(Checkpoint {
            step,
            epoch,
            sections,
        })
    }

    /// Serialize and atomically persist to `path` (see [`atomic_write`]).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Read and fully validate the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
    }
}

/// Byte span of one section inside a serialized checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSpan {
    pub name: String,
    /// Offset of the section record (its `name_len` field).
    pub start: usize,
    /// Offset of the payload bytes.
    pub payload_start: usize,
    /// One past the payload's final byte.
    pub end: usize,
}

/// Map a *valid* serialized checkpoint's section boundaries — used by
/// tooling and by the fault-injection suite to corrupt precise regions.
pub fn layout(bytes: &[u8]) -> Result<(usize, Vec<SectionSpan>), CheckpointError> {
    let ckpt = Checkpoint::from_bytes(bytes)?; // full validation first
    let mut spans = Vec::with_capacity(ckpt.sections.len());
    let mut pos = HEADER_LEN;
    for (name, payload) in &ckpt.sections {
        let start = pos;
        let payload_start = pos + 4 + name.len() + 8 + 4;
        let end = payload_start + payload.len();
        spans.push(SectionSpan {
            name: name.clone(),
            start,
            payload_start,
            end,
        });
        pos = end;
    }
    Ok((HEADER_LEN, spans))
}

// ---------------------------------------------------------------------------
// Typed section codecs
// ---------------------------------------------------------------------------

/// Encode named tensors (bit-exact) for a [`sections::PARAMS`] section.
pub fn encode_named_tensors(named: &[(String, Tensor)]) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u32(named.len() as u32);
    for (name, t) in named {
        w.put_str(name);
        let shape = t.shape();
        w.put_u32(shape.len() as u32);
        for &d in shape {
            w.put_u64(d as u64);
        }
        w.put_u32_slice(&t.data_bits());
    }
    w.finish()
}

/// A decoded tensor entry: name, shape, raw f32 bit patterns.
pub type TensorEntry = (String, Vec<usize>, Vec<u32>);

/// Decode a [`sections::PARAMS`] payload.
pub fn decode_named_tensors(
    bytes: &[u8],
    section: &str,
) -> Result<Vec<TensorEntry>, CheckpointError> {
    let mut r = SectionReader::new(bytes, section);
    let count = r.get_u32("tensor count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = r.get_str("tensor name")?;
        let ndim = r.get_u32("rank")? as usize;
        let mut shape = Vec::with_capacity(ndim.min(16));
        for _ in 0..ndim {
            let d = r.get_u64("dimension")?;
            shape.push(usize::try_from(d).map_err(|_| CheckpointError::Malformed {
                context: format!("section `{section}`"),
                detail: format!("dimension {d} of `{name}` does not fit in usize"),
            })?);
        }
        let bits = r.get_u32_slice("tensor data")?;
        let numel: usize = shape.iter().product();
        if bits.len() != numel {
            return Err(CheckpointError::Malformed {
                context: format!("section `{section}`"),
                detail: format!(
                    "`{name}` has {} values but shape {shape:?} implies {numel}",
                    bits.len()
                ),
            });
        }
        out.push((name, shape, bits));
    }
    r.finish()?;
    Ok(out)
}

/// Copy decoded tensors into matching live parameters. Every parameter in
/// `named` must be present with an identical shape; extra checkpoint
/// entries are ignored (so an encoder can be pulled out of a full-model
/// checkpoint).
pub fn apply_named_tensors(
    entries: &[TensorEntry],
    named: &[(String, Tensor)],
) -> Result<(), CheckpointError> {
    let by_name: BTreeMap<&str, &TensorEntry> = entries.iter().map(|e| (e.0.as_str(), e)).collect();
    // Validate everything before mutating anything, so a mismatch cannot
    // leave the model half-loaded.
    for (name, tensor) in named {
        let (_, shape, _) =
            by_name
                .get(name.as_str())
                .ok_or_else(|| CheckpointError::Incompatible {
                    detail: format!("checkpoint has no parameter `{name}`"),
                })?;
        if shape != tensor.shape() {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "shape mismatch for `{name}`: checkpoint {:?} vs model {:?}",
                    shape,
                    tensor.shape()
                ),
            });
        }
    }
    for (name, tensor) in named {
        let (_, _, bits) = by_name[name.as_str()];
        tensor.set_data_bits(bits);
    }
    Ok(())
}

/// Encode an [`AdamState`] for a [`sections::ADAM`] section.
pub fn encode_adam_state(state: &AdamState) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_f32(state.lr);
    w.put_f32(state.beta1);
    w.put_f32(state.beta2);
    w.put_f32(state.eps);
    w.put_f32(state.weight_decay);
    w.put_u64(state.t);
    w.put_u32(state.m.len() as u32);
    for buf in &state.m {
        w.put_f32_slice(buf);
    }
    w.put_u32(state.v.len() as u32);
    for buf in &state.v {
        w.put_f32_slice(buf);
    }
    w.finish()
}

/// Decode a [`sections::ADAM`] payload.
pub fn decode_adam_state(bytes: &[u8], section: &str) -> Result<AdamState, CheckpointError> {
    let mut r = SectionReader::new(bytes, section);
    let lr = r.get_f32("lr")?;
    let beta1 = r.get_f32("beta1")?;
    let beta2 = r.get_f32("beta2")?;
    let eps = r.get_f32("eps")?;
    let weight_decay = r.get_f32("weight_decay")?;
    let t = r.get_u64("step counter")?;
    let n_m = r.get_u32("first-moment buffer count")? as usize;
    let mut m = Vec::with_capacity(n_m.min(1024));
    for _ in 0..n_m {
        m.push(r.get_f32_slice("first moment")?);
    }
    let n_v = r.get_u32("second-moment buffer count")? as usize;
    let mut v = Vec::with_capacity(n_v.min(1024));
    for _ in 0..n_v {
        v.push(r.get_f32_slice("second moment")?);
    }
    r.finish()?;
    Ok(AdamState {
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        t,
        m,
        v,
    })
}

/// Encode a [`SchedulerState`] for a [`sections::SCHEDULER`] section.
pub fn encode_scheduler_state(state: &SchedulerState) -> Vec<u8> {
    let mut w = SectionWriter::new();
    match *state {
        SchedulerState::Step {
            base_lr,
            step_size,
            gamma,
            epoch,
        } => {
            w.put_u32(0);
            w.put_f32(base_lr);
            w.put_u64(step_size as u64);
            w.put_f32(gamma);
            w.put_u64(epoch as u64);
        }
        SchedulerState::Cosine {
            base_lr,
            min_lr,
            total_epochs,
            epoch,
        } => {
            w.put_u32(1);
            w.put_f32(base_lr);
            w.put_f32(min_lr);
            w.put_u64(total_epochs as u64);
            w.put_u64(epoch as u64);
        }
    }
    w.finish()
}

/// Decode a [`sections::SCHEDULER`] payload.
pub fn decode_scheduler_state(
    bytes: &[u8],
    section: &str,
) -> Result<SchedulerState, CheckpointError> {
    let mut r = SectionReader::new(bytes, section);
    let kind = r.get_u32("scheduler kind")?;
    let state = match kind {
        0 => SchedulerState::Step {
            base_lr: r.get_f32("base_lr")?,
            step_size: r.get_usize("step_size")?,
            gamma: r.get_f32("gamma")?,
            epoch: r.get_usize("epoch")?,
        },
        1 => SchedulerState::Cosine {
            base_lr: r.get_f32("base_lr")?,
            min_lr: r.get_f32("min_lr")?,
            total_epochs: r.get_usize("total_epochs")?,
            epoch: r.get_usize("epoch")?,
        },
        other => {
            return Err(CheckpointError::Malformed {
                context: format!("section `{section}`"),
                detail: format!("unknown scheduler kind tag {other}"),
            })
        }
    };
    r.finish()?;
    Ok(state)
}

// ---------------------------------------------------------------------------
// JSON state dicts (original API, now crash-safe)
// ---------------------------------------------------------------------------

/// Serialized tensor: shape + row-major data.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TensorState {
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

/// Name → tensor state, ordered for reproducible files.
pub type StateDict = BTreeMap<String, TensorState>;

/// Snapshot named parameters into a [`StateDict`].
pub fn state_dict_of(named: &[(String, Tensor)]) -> StateDict {
    named
        .iter()
        .map(|(n, t)| {
            (
                n.clone(),
                TensorState {
                    shape: t.shape().to_vec(),
                    data: t.to_vec(),
                },
            )
        })
        .collect()
}

/// Write a state dict as JSON via [`atomic_write`], so a crash mid-save
/// leaves any previous checkpoint at `path` intact.
pub fn save_state_dict(path: &Path, named: &[(String, Tensor)]) -> io::Result<()> {
    let sd = state_dict_of(named);
    let json = serde_json::to_string(&sd).map_err(io::Error::other)?;
    atomic_write(path, json.as_bytes())
}

/// Read a state dict from JSON and copy values into matching parameters.
///
/// Every parameter in `named` must be present in the file with the same
/// shape; extra file entries are ignored (allows loading an encoder out of
/// a larger model checkpoint).
pub fn load_state_dict(path: &Path, named: &[(String, Tensor)]) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let sd: StateDict = serde_json::from_str(&json).map_err(io::Error::other)?;
    apply_state_dict(&sd, named)
}

/// Copy a [`StateDict`]'s values into matching parameters.
pub fn apply_state_dict(sd: &StateDict, named: &[(String, Tensor)]) -> io::Result<()> {
    for (name, tensor) in named {
        let state = sd.get(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("missing parameter `{name}`"),
            )
        })?;
        if state.shape != tensor.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for `{name}`: checkpoint {:?} vs model {:?}",
                    state.shape,
                    tensor.shape()
                ),
            ));
        }
        tensor.set_data(&state.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Module};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aimts_nn_ckpt_{tag}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values of the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_weights() {
        let path = tmp_dir("json").join("lin.json");

        let a = Linear::new(3, 2, true, 42);
        let mut named = Vec::new();
        a.named_parameters("enc", &mut named);
        save_state_dict(&path, &named).unwrap();

        let b = Linear::new(3, 2, true, 7);
        let mut named_b = Vec::new();
        b.named_parameters("enc", &mut named_b);
        assert_ne!(named[0].1.to_vec(), named_b[0].1.to_vec());
        load_state_dict(&path, &named_b).unwrap();
        assert_eq!(named[0].1.to_vec(), named_b[0].1.to_vec());
        assert_eq!(named[1].1.to_vec(), named_b[1].1.to_vec());
    }

    #[test]
    fn missing_parameter_errors() {
        let sd = StateDict::new();
        let lin = Linear::new(2, 2, false, 0);
        let mut named = Vec::new();
        lin.named_parameters("x", &mut named);
        assert!(apply_state_dict(&sd, &named).is_err());
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Linear::new(3, 2, false, 0);
        let mut named = Vec::new();
        a.named_parameters("m", &mut named);
        let sd = state_dict_of(&named);
        let b = Linear::new(3, 4, false, 0);
        let mut named_b = Vec::new();
        b.named_parameters("m", &mut named_b);
        assert!(apply_state_dict(&sd, &named_b).is_err());
    }

    #[test]
    fn binary_container_roundtrip() {
        let mut ck = Checkpoint::new(123, 7);
        ck.push_section("alpha", vec![1, 2, 3]);
        ck.push_section("beta", Vec::new());
        ck.push_section("gamma", (0u8..255).collect());
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.step, 123);
        assert_eq!(back.epoch, 7);
        assert_eq!(back.section("beta"), Some(&[][..]));
        assert!(back.section("delta").is_none());
        assert!(matches!(
            back.require_section("delta"),
            Err(CheckpointError::MissingSection { .. })
        ));
    }

    #[test]
    fn binary_save_load_roundtrip_on_disk() {
        let path = tmp_dir("bin").join("ck.aimts");
        let mut ck = Checkpoint::new(1, 2);
        ck.push_section("s", vec![9; 64]);
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // No temp litter left behind.
        let litter: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files left behind: {litter:?}");
    }

    #[test]
    fn layout_reports_section_spans() {
        let mut ck = Checkpoint::new(0, 0);
        ck.push_section("one", vec![0; 10]);
        ck.push_section("two", vec![0; 20]);
        let bytes = ck.to_bytes();
        let (header_end, spans) = layout(&bytes).unwrap();
        assert_eq!(header_end, HEADER_LEN);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "one");
        assert_eq!(spans[0].start, HEADER_LEN);
        assert_eq!(spans[0].end - spans[0].payload_start, 10);
        assert_eq!(spans[1].start, spans[0].end);
        assert_eq!(spans[1].end, bytes.len());
    }

    #[test]
    fn tensor_codec_roundtrips_including_nonfinite() {
        let t = Tensor::from_vec(
            vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.5e-42],
            &[5],
        );
        let named = vec![("w".to_string(), t)];
        let bytes = encode_named_tensors(&named);
        let entries = decode_named_tensors(&bytes, "params").unwrap();
        let target = vec![("w".to_string(), Tensor::from_vec(vec![0.0; 5], &[5]))];
        apply_named_tensors(&entries, &target).unwrap();
        assert_eq!(target[0].1.data_bits(), named[0].1.data_bits());
    }

    #[test]
    fn apply_named_tensors_rejects_mismatches_without_mutating() {
        let src = vec![("w".to_string(), Tensor::from_vec(vec![1.0, 2.0], &[2]))];
        let entries = decode_named_tensors(&encode_named_tensors(&src), "params").unwrap();
        // Missing name.
        let other = vec![("x".to_string(), Tensor::from_vec(vec![0.0, 0.0], &[2]))];
        assert!(matches!(
            apply_named_tensors(&entries, &other),
            Err(CheckpointError::Incompatible { .. })
        ));
        assert_eq!(other[0].1.to_vec(), vec![0.0, 0.0]);
        // Wrong shape.
        let other = vec![("w".to_string(), Tensor::from_vec(vec![0.0; 3], &[3]))];
        assert!(matches!(
            apply_named_tensors(&entries, &other),
            Err(CheckpointError::Incompatible { .. })
        ));
        assert_eq!(other[0].1.to_vec(), vec![0.0; 3]);
    }

    #[test]
    fn adam_and_scheduler_codecs_roundtrip() {
        let adam = AdamState {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 42,
            m: vec![vec![1.0, f32::NAN], vec![]],
            v: vec![vec![2.0, f32::INFINITY], vec![]],
        };
        let back = decode_adam_state(&encode_adam_state(&adam), "adam").unwrap();
        assert_eq!(back.t, adam.t);
        assert_eq!(back.lr.to_bits(), adam.lr.to_bits());
        assert_eq!(back.m[0][1].to_bits(), adam.m[0][1].to_bits());
        assert_eq!(back.v, adam.v);

        for state in [
            SchedulerState::Step {
                base_lr: 0.1,
                step_size: 3,
                gamma: 0.5,
                epoch: 9,
            },
            SchedulerState::Cosine {
                base_lr: 1.0,
                min_lr: 0.01,
                total_epochs: 50,
                epoch: 13,
            },
        ] {
            let back =
                decode_scheduler_state(&encode_scheduler_state(&state), "scheduler").unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn load_rejects_garbage_and_wrong_versions() {
        assert!(matches!(
            Checkpoint::from_bytes(&[]),
            Err(CheckpointError::Truncated { .. })
        ));
        assert!(matches!(
            Checkpoint::from_bytes(&[0u8; 64]),
            Err(CheckpointError::BadMagic)
        ));
        let mut bytes = Checkpoint::new(0, 0).to_bytes();
        bytes[8] = 99; // version
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99, .. })
        ));
        // Header flip (step counter) trips the header CRC.
        let mut bytes = Checkpoint::new(0, 0).to_bytes();
        bytes[13] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::HeaderCorrupt)
        ));
        // Trailing garbage is rejected.
        let mut bytes = Checkpoint::new(0, 0).to_bytes();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn failed_save_preserves_previous_file_and_cleans_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("ck.aimts");
        let mut first = Checkpoint::new(1, 1);
        first.push_section("s", vec![7; 128]);
        first.save(&path).unwrap();
        let original = fs::read(&path).unwrap();

        let mut second = Checkpoint::new(2, 2);
        second.push_section("s", vec![8; 128]);
        let err = atomic_write_failing_after(&path, &second.to_bytes(), 40);
        assert!(err.is_err(), "injected crash must surface as an error");
        assert_eq!(
            fs::read(&path).unwrap(),
            original,
            "failed save clobbered the previous checkpoint"
        );
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files left behind: {litter:?}");
        // And the still-valid original loads.
        assert_eq!(Checkpoint::load(&path).unwrap(), first);
    }

    #[test]
    fn error_display_names_sections() {
        let e = CheckpointError::ChecksumMismatch {
            section: "adam".to_string(),
        };
        assert!(e.to_string().contains("`adam`"));
        let e = CheckpointError::Truncated {
            context: "section `params` payload".to_string(),
        };
        assert!(e.to_string().contains("params"));
    }
}
