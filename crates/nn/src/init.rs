//! Kaiming (He) uniform initialization, matching PyTorch defaults.

use aimts_tensor::Tensor;

fn kaiming_bound(fan_in: usize) -> f32 {
    // gain for ReLU-family = sqrt(2); bound = gain * sqrt(3 / fan_in).
    (2.0f32).sqrt() * (3.0 / fan_in as f32).sqrt()
}

/// Linear weight `[in, out]` initialized Kaiming-uniform over fan-in.
pub fn kaiming_linear(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let b = kaiming_bound(fan_in);
    Tensor::rand_uniform(&[fan_in, fan_out], -b, b, seed)
}

/// Conv1d weight `[c_out, c_in, k]`, fan-in = `c_in * k`.
pub fn kaiming_conv1d(c_out: usize, c_in: usize, k: usize, seed: u64) -> Tensor {
    let b = kaiming_bound(c_in * k);
    Tensor::rand_uniform(&[c_out, c_in, k], -b, b, seed)
}

/// Conv2d weight `[c_out, c_in, kh, kw]`, fan-in = `c_in * kh * kw`.
pub fn kaiming_conv2d(c_out: usize, c_in: usize, kh: usize, kw: usize, seed: u64) -> Tensor {
    let b = kaiming_bound(c_in * kh * kw);
    Tensor::rand_uniform(&[c_out, c_in, kh, kw], -b, b, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_shrink_with_fan_in() {
        let small = kaiming_linear(4, 8, 0);
        let large = kaiming_linear(400, 8, 0);
        let max_small = small.to_vec().iter().fold(0f32, |a, x| a.max(x.abs()));
        let max_large = large.to_vec().iter().fold(0f32, |a, x| a.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            kaiming_conv1d(2, 3, 5, 9).to_vec(),
            kaiming_conv1d(2, 3, 5, 9).to_vec()
        );
    }
}
