//! # aimts-nn
//!
//! Neural-network building blocks on top of [`aimts_tensor`]: a [`Module`]
//! trait, the layers needed by the AimTS encoders (linear, 1-D/2-D
//! convolution, batch/layer norm, dropout), weight initialization,
//! optimizers (SGD, [`Adam`]) with the paper's StepLR schedule, and
//! JSON checkpointing.
//!
//! ```
//! use aimts_nn::{Linear, Module, Adam, Optimizer};
//! use aimts_tensor::Tensor;
//!
//! let layer = Linear::new(4, 2, true, 0);
//! let x = Tensor::randn(&[8, 4], 1);
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), &[8, 2]);
//!
//! let mut opt = Adam::new(layer.parameters(), 1e-2);
//! y.square().mean_all().backward();
//! opt.step();
//! opt.zero_grad();
//! ```

// Library code must propagate errors, not unwrap: checkpoint load paths promise "loads never panic"
// (mirrors aimts-lint rule A001; tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod checkpoint;
mod init;
mod layers;
mod module;
mod optim;
mod scheduler;

pub use checkpoint::{
    apply_named_tensors, apply_state_dict, atomic_write, atomic_write_failing_after, crc32,
    decode_adam_state, decode_named_tensors, decode_scheduler_state, encode_adam_state,
    encode_named_tensors, encode_scheduler_state, layout, load_state_dict, save_state_dict,
    sections, state_dict_of, Checkpoint, CheckpointError, SectionReader, SectionSpan,
    SectionWriter, StateDict, TensorEntry, TensorState, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use init::{kaiming_conv1d, kaiming_conv2d, kaiming_linear};
pub use layers::{
    Activation, BatchNorm1d, Conv1d, Conv2d, Dropout, LayerNorm, Linear, Mlp, Sequential,
};
pub use module::{AnyModule, CompiledStep, Module, ParamLayout, Replicate};
pub use optim::{clip_grad_norm, grad_norm, Adam, AdamState, Optimizer, Sgd};
pub use scheduler::{CosineLr, SchedulerState, StepLr};
