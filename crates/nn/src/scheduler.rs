//! Learning-rate schedules. The paper uses StepLR decay during
//! pre-training (§V-A.3).

use crate::optim::Optimizer;

/// Serializable snapshot of a learning-rate schedule, tagged by kind so a
/// checkpoint can refuse to resume into the wrong schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerState {
    Step {
        base_lr: f32,
        step_size: usize,
        gamma: f32,
        epoch: usize,
    },
    Cosine {
        base_lr: f32,
        min_lr: f32,
        total_epochs: usize,
        epoch: usize,
    },
}

/// Multiply the learning rate by `gamma` every `step_size` epochs.
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
    epoch: usize,
}

impl StepLr {
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr {
            base_lr,
            step_size,
            gamma,
            epoch: 0,
        }
    }

    /// Learning rate for the current epoch.
    pub fn current_lr(&self) -> f32 {
        self.base_lr * self.gamma.powi((self.epoch / self.step_size) as i32)
    }

    /// Advance one epoch and push the new LR into the optimizer.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.current_lr());
    }

    /// Snapshot for checkpointing.
    pub fn export_state(&self) -> SchedulerState {
        SchedulerState::Step {
            base_lr: self.base_lr,
            step_size: self.step_size,
            gamma: self.gamma,
            epoch: self.epoch,
        }
    }

    /// Restore a [`SchedulerState::Step`] snapshot; rejects other kinds.
    pub fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match *state {
            SchedulerState::Step {
                base_lr,
                step_size,
                gamma,
                epoch,
            } => {
                if step_size == 0 {
                    return Err("StepLr step_size must be positive".into());
                }
                self.base_lr = base_lr;
                self.step_size = step_size;
                self.gamma = gamma;
                self.epoch = epoch;
                Ok(())
            }
            SchedulerState::Cosine { .. } => {
                Err("checkpoint holds a CosineLr state, expected StepLr".into())
            }
        }
    }
}

/// Cosine annealing from `base_lr` down to `min_lr` over `total_epochs`
/// (extension beyond the paper's StepLR, useful for longer runs).
pub struct CosineLr {
    base_lr: f32,
    min_lr: f32,
    total_epochs: usize,
    epoch: usize,
}

impl CosineLr {
    pub fn new(base_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "total_epochs must be positive");
        assert!(min_lr <= base_lr, "min_lr must not exceed base_lr");
        CosineLr {
            base_lr,
            min_lr,
            total_epochs,
            epoch: 0,
        }
    }

    /// Learning rate for the current epoch.
    pub fn current_lr(&self) -> f32 {
        let t = (self.epoch.min(self.total_epochs)) as f32 / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }

    /// Advance one epoch and push the new LR into the optimizer.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.current_lr());
    }

    /// Snapshot for checkpointing.
    pub fn export_state(&self) -> SchedulerState {
        SchedulerState::Cosine {
            base_lr: self.base_lr,
            min_lr: self.min_lr,
            total_epochs: self.total_epochs,
            epoch: self.epoch,
        }
    }

    /// Restore a [`SchedulerState::Cosine`] snapshot; rejects other kinds.
    pub fn restore_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match *state {
            SchedulerState::Cosine {
                base_lr,
                min_lr,
                total_epochs,
                epoch,
            } => {
                if total_epochs == 0 {
                    return Err("CosineLr total_epochs must be positive".into());
                }
                self.base_lr = base_lr;
                self.min_lr = min_lr;
                self.total_epochs = total_epochs;
                self.epoch = epoch;
                Ok(())
            }
            SchedulerState::Step { .. } => {
                Err("checkpoint holds a StepLr state, expected CosineLr".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn cosine_monotone_decreasing_to_min() {
        let mut sched = CosineLr::new(1.0, 0.1, 10);
        let mut opt = Adam::new(vec![], 1.0);
        let mut prev = sched.current_lr();
        assert_eq!(prev, 1.0);
        for _ in 0..10 {
            sched.step(&mut opt);
            assert!(opt.lr() <= prev + 1e-6, "lr must not increase");
            prev = opt.lr();
        }
        assert!((opt.lr() - 0.1).abs() < 1e-5);
        // Past the horizon it stays at min.
        sched.step(&mut opt);
        assert!((opt.lr() - 0.1).abs() < 1e-5);
    }

    #[test]
    fn state_roundtrip_resumes_schedule() {
        let mut opt = Adam::new(vec![], 1.0);
        let mut a = StepLr::new(1.0, 2, 0.5);
        a.step(&mut opt);
        a.step(&mut opt);
        a.step(&mut opt);
        let snap = a.export_state();
        let mut b = StepLr::new(9.0, 7, 0.9);
        b.restore_state(&snap).unwrap();
        assert_eq!(b.current_lr(), a.current_lr());
        let mut oa = Adam::new(vec![], 1.0);
        let mut ob = Adam::new(vec![], 1.0);
        a.step(&mut oa);
        b.step(&mut ob);
        assert_eq!(oa.lr(), ob.lr());
        // A cosine snapshot does not restore into StepLr, and vice versa.
        let cos = CosineLr::new(1.0, 0.1, 4).export_state();
        assert!(b.restore_state(&cos).is_err());
        let mut c = CosineLr::new(1.0, 0.1, 4);
        assert!(c.restore_state(&snap).is_err());
        assert!(c.restore_state(&cos).is_ok());
    }

    #[test]
    fn decays_every_step_size() {
        let mut sched = StepLr::new(1.0, 2, 0.5);
        let mut opt = Adam::new(vec![], 1.0);
        assert_eq!(sched.current_lr(), 1.0);
        sched.step(&mut opt); // epoch 1
        assert_eq!(opt.lr(), 1.0);
        sched.step(&mut opt); // epoch 2 -> halved
        assert_eq!(opt.lr(), 0.5);
        sched.step(&mut opt);
        sched.step(&mut opt); // epoch 4 -> quartered
        assert_eq!(opt.lr(), 0.25);
    }
}
