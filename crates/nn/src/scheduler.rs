//! Learning-rate schedules. The paper uses StepLR decay during
//! pre-training (§V-A.3).

use crate::optim::Optimizer;

/// Multiply the learning rate by `gamma` every `step_size` epochs.
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
    epoch: usize,
}

impl StepLr {
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr {
            base_lr,
            step_size,
            gamma,
            epoch: 0,
        }
    }

    /// Learning rate for the current epoch.
    pub fn current_lr(&self) -> f32 {
        self.base_lr * self.gamma.powi((self.epoch / self.step_size) as i32)
    }

    /// Advance one epoch and push the new LR into the optimizer.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.current_lr());
    }
}

/// Cosine annealing from `base_lr` down to `min_lr` over `total_epochs`
/// (extension beyond the paper's StepLR, useful for longer runs).
pub struct CosineLr {
    base_lr: f32,
    min_lr: f32,
    total_epochs: usize,
    epoch: usize,
}

impl CosineLr {
    pub fn new(base_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "total_epochs must be positive");
        assert!(min_lr <= base_lr, "min_lr must not exceed base_lr");
        CosineLr {
            base_lr,
            min_lr,
            total_epochs,
            epoch: 0,
        }
    }

    /// Learning rate for the current epoch.
    pub fn current_lr(&self) -> f32 {
        let t = (self.epoch.min(self.total_epochs)) as f32 / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }

    /// Advance one epoch and push the new LR into the optimizer.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.current_lr());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn cosine_monotone_decreasing_to_min() {
        let mut sched = CosineLr::new(1.0, 0.1, 10);
        let mut opt = Adam::new(vec![], 1.0);
        let mut prev = sched.current_lr();
        assert_eq!(prev, 1.0);
        for _ in 0..10 {
            sched.step(&mut opt);
            assert!(opt.lr() <= prev + 1e-6, "lr must not increase");
            prev = opt.lr();
        }
        assert!((opt.lr() - 0.1).abs() < 1e-5);
        // Past the horizon it stays at min.
        sched.step(&mut opt);
        assert!((opt.lr() - 0.1).abs() < 1e-5);
    }

    #[test]
    fn decays_every_step_size() {
        let mut sched = StepLr::new(1.0, 2, 0.5);
        let mut opt = Adam::new(vec![], 1.0);
        assert_eq!(sched.current_lr(), 1.0);
        sched.step(&mut opt); // epoch 1
        assert_eq!(opt.lr(), 1.0);
        sched.step(&mut opt); // epoch 2 -> halved
        assert_eq!(opt.lr(), 0.5);
        sched.step(&mut opt);
        sched.step(&mut opt); // epoch 4 -> quartered
        assert_eq!(opt.lr(), 0.25);
    }
}
