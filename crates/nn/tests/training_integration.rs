//! Integration tests: end-to-end training of small networks built from the
//! layer zoo, schedulers driving optimizers, and checkpoint compatibility
//! across containers.

use aimts_nn::{
    clip_grad_norm, load_state_dict, save_state_dict, Activation, Adam, AnyModule, BatchNorm1d,
    Conv1d, CosineLr, Dropout, LayerNorm, Linear, Mlp, Module, Optimizer, Replicate, Sequential,
    Sgd, StepLr,
};
use aimts_tensor::ops::Conv1dSpec;
use aimts_tensor::Tensor;

/// A 2-moon-ish binary problem: class = sign of a non-linear feature.
fn toy_problem(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let x = Tensor::randn(&[n, 2], seed);
    let v = x.to_vec();
    let labels: Vec<usize> = (0..n)
        .map(|i| ((v[i * 2] * v[i * 2] - v[i * 2 + 1]) > 0.0) as usize)
        .collect();
    (x, labels)
}

fn train_classifier(model: &dyn Module, x: &Tensor, y: &[usize], epochs: usize) -> f32 {
    let mut opt = Adam::new(model.parameters(), 5e-3);
    let mut last = f32::NAN;
    for _ in 0..epochs {
        let loss = model.forward(x).cross_entropy(y);
        opt.zero_grad();
        loss.backward();
        opt.step();
        last = loss.item();
    }
    last
}

#[test]
fn mlp_learns_nonlinear_boundary() {
    let (x, y) = toy_problem(128, 0);
    let mlp = Mlp::new(&[2, 24, 24, 2], Activation::Gelu, 1);
    let first = mlp.forward(&x).cross_entropy(&y).item();
    let last = train_classifier(&mlp, &x, &y, 200);
    assert!(last < first * 0.5, "loss {first} -> {last}");
    let preds = mlp.forward(&x).argmax_axis(1);
    let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f32 / y.len() as f32;
    assert!(acc > 0.85, "train accuracy {acc}");
}

#[test]
fn conv_batchnorm_dropout_stack_trains() {
    // [B, 1, T] -> conv -> BN -> relu -> dropout -> conv -> GAP-ish mean.
    struct Net {
        c1: Conv1d,
        bn: BatchNorm1d,
        drop: Dropout,
        c2: Conv1d,
        head: Linear,
    }
    impl Module for Net {
        fn forward(&self, x: &Tensor) -> Tensor {
            let h = self.bn.forward(&self.c1.forward(x)).relu();
            let h = self.drop.forward(&h);
            let h = self.c2.forward(&h).global_avg_pool1d();
            self.head.forward(&h)
        }
        fn named_parameters(&self, p: &str, out: &mut Vec<(String, Tensor)>) {
            self.c1.named_parameters(&format!("{p}.c1"), out);
            self.bn.named_parameters(&format!("{p}.bn"), out);
            self.c2.named_parameters(&format!("{p}.c2"), out);
            self.head.named_parameters(&format!("{p}.head"), out);
        }
        fn set_training(&self, t: bool) {
            self.bn.set_training(t);
            self.drop.set_training(t);
        }
    }
    let net = Net {
        c1: Conv1d::new(1, 8, 3, Conv1dSpec::same(3, 1), true, 0),
        bn: BatchNorm1d::new(8),
        drop: Dropout::new(0.1, 0),
        c2: Conv1d::new(8, 8, 3, Conv1dSpec::same(3, 1), true, 1),
        head: Linear::new(8, 2, true, 2),
    };
    // Class = high vs low frequency sine.
    let n = 32;
    let t = 32;
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let f = if i % 2 == 0 { 2.0 } else { 6.0 };
        labels.push(i % 2);
        for k in 0..t {
            data.push((f * k as f32 * std::f32::consts::TAU / t as f32).sin());
        }
    }
    let x = Tensor::from_vec(data, &[n, 1, t]);
    let last = train_classifier(&net, &x, &labels, 60);
    assert!(last < 0.4, "final loss {last}");
    net.set_training(false);
    let preds = net.forward(&x).argmax_axis(1);
    let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f32 / n as f32;
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn schedulers_drive_optimizers() {
    let p = Tensor::zeros(&[1]).requires_grad();
    let mut opt = Sgd::new(vec![p], 1.0);
    let mut step = StepLr::new(1.0, 1, 0.1);
    step.step(&mut opt);
    assert!((opt.lr() - 0.1).abs() < 1e-7);
    let mut cos = CosineLr::new(0.1, 0.0, 4);
    for _ in 0..4 {
        cos.step(&mut opt);
    }
    assert!(opt.lr() < 1e-6);
}

#[test]
fn gradient_clipping_stabilizes_large_lr() {
    // Exploding setup: big lr, steep loss; clipping keeps params finite.
    let x = Tensor::from_vec(vec![10.0], &[1]).requires_grad();
    let params = vec![x.clone()];
    let mut opt = Sgd::new(params.clone(), 0.5);
    for _ in 0..50 {
        opt.zero_grad();
        let loss = x.square().square().sum_all(); // x^4: grad 4x^3
        loss.backward();
        clip_grad_norm(&params, 1.0);
        opt.step();
    }
    let v = x.to_vec()[0];
    assert!(v.is_finite() && v.abs() < 10.0, "diverged to {v}");
}

#[test]
fn layernorm_sequential_checkpoint_roundtrip() {
    let build = |seed: u64| {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, seed)) as Box<dyn AnyModule>,
            Box::new(LayerNorm::new(8)),
            Box::new(Activation::Relu),
            Box::new(Linear::new(8, 3, true, seed + 1)),
        ])
    };
    let a = build(3);
    let b = build(99);
    let x = Tensor::randn(&[5, 4], 7);
    assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());

    let path = std::env::temp_dir().join("aimts_nn_seq_ckpt.json");
    let mut named = Vec::new();
    a.named_parameters("m", &mut named);
    save_state_dict(&path, &named).unwrap();
    let mut named_b = Vec::new();
    b.named_parameters("m", &mut named_b);
    load_state_dict(&path, &named_b).unwrap();
    assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
}

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn modules_are_send_sync() {
    assert_send_sync::<Linear>();
    assert_send_sync::<Conv1d>();
    assert_send_sync::<aimts_nn::Conv2d>();
    assert_send_sync::<BatchNorm1d>();
    assert_send_sync::<LayerNorm>();
    assert_send_sync::<Dropout>();
    assert_send_sync::<Activation>();
    assert_send_sync::<Sequential>();
    assert_send_sync::<Mlp>();
}

#[test]
fn replicate_is_a_deep_copy() {
    let mlp = Mlp::new(&[4, 8, 2], Activation::Gelu, 11);
    let replica = mlp.replicate();
    let x = Tensor::randn(&[3, 4], 5);
    assert_eq!(mlp.forward(&x).to_vec(), replica.forward(&x).to_vec());

    // Training the replica must leave the original untouched.
    let before = mlp.flat_parameters();
    let mut opt = Adam::new(replica.parameters(), 1e-2);
    replica.forward(&x).square().mean_all().backward();
    opt.step();
    assert_eq!(mlp.flat_parameters(), before, "original drifted");
    assert_ne!(replica.flat_parameters(), before, "replica did not train");
    // And gradients stay on the replica's parameters only.
    assert!(mlp.parameters().iter().all(|p| p.grad().is_none()));
}

#[test]
fn flat_parameter_roundtrip_and_gradient_export() {
    let a = Mlp::new(&[3, 6, 2], Activation::Relu, 0);
    let b = Mlp::new(&[3, 6, 2], Activation::Relu, 99);
    let x = Tensor::randn(&[4, 3], 7);
    assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    b.load_flat(&a.flat_parameters());
    assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());

    // flat_gradient is zeros before backward, matches per-param grads after.
    assert!(a.flat_gradient().iter().all(|&g| g == 0.0));
    a.forward(&x).square().mean_all().backward();
    let flat = a.flat_gradient();
    assert_eq!(flat.len(), a.num_parameters());
    let manual: Vec<f32> = a
        .parameters()
        .iter()
        .flat_map(|p| p.grad().unwrap_or_else(|| vec![0.0; p.numel()]))
        .collect();
    assert_eq!(flat, manual);

    // accumulate_flat_gradient adds into the slots (b has no grads yet).
    b.accumulate_flat_gradient(&flat);
    b.accumulate_flat_gradient(&flat);
    let doubled: Vec<f32> = flat.iter().map(|g| g * 2.0).collect();
    assert_eq!(b.flat_gradient(), doubled);
}

#[test]
#[should_panic(expected = "load_flat length mismatch")]
fn load_flat_rejects_wrong_length() {
    Mlp::new(&[3, 2], Activation::Relu, 0).load_flat(&[0.0; 4]);
}

#[test]
fn adam_weight_decay_regularizes() {
    // Same data, same model shape: decayed weights end up smaller.
    let (x, y) = toy_problem(64, 5);
    let run = |wd: f32| {
        let mlp = Mlp::new(&[2, 16, 2], Activation::Relu, 9);
        let mut opt = Adam::with_config(mlp.parameters(), 5e-3, 0.9, 0.999, 1e-8, wd);
        for _ in 0..100 {
            let loss = mlp.forward(&x).cross_entropy(&y);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        mlp.parameters()
            .iter()
            .map(|p| p.to_vec().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
    };
    assert!(run(0.05) < run(0.0));
}
