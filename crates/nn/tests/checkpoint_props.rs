//! Property-based round-trip guarantees for the binary checkpoint format:
//! arbitrary shapes and arbitrary f32 bit patterns — including `NaN`
//! payloads, `±inf`, `-0.0` and subnormals — must survive
//! encode → serialize → parse → decode → apply *bit-for-bit*.

use aimts_nn::{
    apply_named_tensors, decode_adam_state, decode_named_tensors, decode_scheduler_state,
    encode_adam_state, encode_named_tensors, encode_scheduler_state, sections, AdamState,
    Checkpoint, SchedulerState, SectionReader, SectionWriter,
};
use aimts_tensor::Tensor;
use proptest::prelude::*;

/// Interesting IEEE-754 corner cases appended to every generated buffer so
/// each run exercises them regardless of what the u32 generator produced.
const SPECIAL_BITS: [u32; 6] = [
    0x7FC0_0000, // quiet NaN
    0x7F80_0001, // signaling-NaN payload
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x8000_0000, // -0.0
    0x0000_0001, // smallest subnormal
];

/// Strategy: a tensor shape of 1–3 dims, each 1–5 (up to 125 elements).
fn shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=3)
}

/// Strategy: `(shape, raw f32 bit patterns)` with the special values mixed
/// into the front of the buffer.
fn shaped_bits() -> impl Strategy<Value = (Vec<usize>, Vec<u32>)> {
    shape().prop_flat_map(|s| {
        let n: usize = s.iter().product();
        prop::collection::vec(0u32..=u32::MAX, n..=n).prop_map(move |mut bits| {
            for (i, special) in SPECIAL_BITS.iter().enumerate() {
                if i < bits.len() {
                    bits[i] = *special;
                }
            }
            (s.clone(), bits)
        })
    })
}

fn tensor_from_bits(shape: &[usize], bits: &[u32]) -> Tensor {
    Tensor::from_vec(bits.iter().map(|&b| f32::from_bits(b)).collect(), shape)
}

proptest! {
    /// Full pipeline: named tensors → params section → serialized container
    /// → parse → decode → apply onto fresh zero tensors, compared by bits.
    #[test]
    fn named_tensors_roundtrip_bit_exactly(
        tensors in prop::collection::vec(shaped_bits(), 1..5),
        step in 0u64..u64::MAX,
        epoch in 0u64..u64::MAX,
    ) {
        let named: Vec<(String, Tensor)> = tensors
            .iter()
            .enumerate()
            .map(|(i, (s, bits))| (format!("t{i}"), tensor_from_bits(s, bits)))
            .collect();

        let mut ck = Checkpoint::new(step, epoch);
        ck.push_section(sections::PARAMS, encode_named_tensors(&named));
        let parsed = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(parsed.step, step);
        prop_assert_eq!(parsed.epoch, epoch);

        let entries =
            decode_named_tensors(parsed.section(sections::PARAMS).unwrap(), sections::PARAMS)
                .unwrap();
        let fresh: Vec<(String, Tensor)> = tensors
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (format!("t{i}"), Tensor::zeros(s)))
            .collect();
        apply_named_tensors(&entries, &fresh).unwrap();

        for ((_, restored), (_, original)) in fresh.iter().zip(&named) {
            prop_assert_eq!(restored.shape(), original.shape());
            prop_assert_eq!(restored.data_bits(), original.data_bits());
        }
    }

    /// Adam moments with arbitrary bit patterns survive their codec.
    #[test]
    fn adam_state_roundtrips_bit_exactly(
        buffers in prop::collection::vec(shaped_bits(), 1..4),
        t in 0u64..1_000_000,
    ) {
        let to_f32 = |bits: &[u32]| bits.iter().map(|&b| f32::from_bits(b)).collect::<Vec<_>>();
        let state = AdamState {
            lr: 7e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t,
            m: buffers.iter().map(|(_, b)| to_f32(b)).collect(),
            v: buffers.iter().map(|(_, b)| to_f32(&b.iter().rev().copied().collect::<Vec<_>>())).collect(),
        };
        let back = decode_adam_state(&encode_adam_state(&state), sections::ADAM).unwrap();
        prop_assert_eq!(back.t, state.t);
        prop_assert_eq!(back.m.len(), state.m.len());
        for (a, b) in back.m.iter().zip(&state.m) {
            let (ab, bb): (Vec<u32>, Vec<u32>) =
                (a.iter().map(|x| x.to_bits()).collect(), b.iter().map(|x| x.to_bits()).collect());
            prop_assert_eq!(ab, bb);
        }
        for (a, b) in back.v.iter().zip(&state.v) {
            let (ab, bb): (Vec<u32>, Vec<u32>) =
                (a.iter().map(|x| x.to_bits()).collect(), b.iter().map(|x| x.to_bits()).collect());
            prop_assert_eq!(ab, bb);
        }
    }

    /// Both scheduler kinds survive their codec at arbitrary positions.
    #[test]
    fn scheduler_state_roundtrips(
        base_lr in 1e-6f32..1.0,
        epoch in 0usize..10_000,
        step_size in 1usize..100,
        total in 1usize..10_000,
        kind in prop::sample::select(vec![0u8, 1]),
    ) {
        let state = if kind == 0 {
            SchedulerState::Step { base_lr, step_size, gamma: 0.5, epoch }
        } else {
            SchedulerState::Cosine { base_lr, min_lr: base_lr / 100.0, total_epochs: total, epoch }
        };
        let back =
            decode_scheduler_state(&encode_scheduler_state(&state), sections::SCHEDULER).unwrap();
        prop_assert_eq!(back, state);
    }

    /// The primitive section codec is an exact inverse of itself.
    #[test]
    fn section_codec_roundtrips_primitives(
        a in 0u32..u32::MAX,
        b in 0u64..u64::MAX,
        bits in prop::collection::vec(0u32..=u32::MAX, 0..40),
        words in prop::collection::vec(0u32..=u32::MAX, 0..40),
        name in prop::collection::vec(97u8..=122, 0..12),
    ) {
        let floats: Vec<f32> = bits.iter().map(|&x| f32::from_bits(x)).collect();
        let text = String::from_utf8(name).unwrap();

        let mut w = SectionWriter::new();
        w.put_u32(a);
        w.put_u64(b);
        w.put_str(&text);
        w.put_f32_slice(&floats);
        w.put_u32_slice(&words);
        let bytes = w.finish();

        let mut r = SectionReader::new(&bytes, "prop");
        prop_assert_eq!(r.get_u32("a").unwrap(), a);
        prop_assert_eq!(r.get_u64("b").unwrap(), b);
        prop_assert_eq!(r.get_str("text").unwrap(), text);
        let floats_back: Vec<u32> =
            r.get_f32_slice("floats").unwrap().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(floats_back, bits);
        prop_assert_eq!(r.get_u32_slice("words").unwrap(), words);
        r.finish().unwrap();
    }
}
