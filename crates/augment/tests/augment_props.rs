//! Property-based invariants for the augmentation bank.

use aimts_augment::{default_bank, extended_bank, linear_resample, Augmentation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn series() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100f32..100f32, 3..200)
}

proptest! {
    #[test]
    fn length_preserved(x in series(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for aug in extended_bank() {
            prop_assert_eq!(aug.apply(&x, &mut rng).len(), x.len());
        }
    }

    #[test]
    fn output_finite(x in series(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for aug in default_bank() {
            prop_assert!(aug.apply(&x, &mut rng).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn determinism(x in series(), seed in 0u64..1000) {
        for aug in default_bank() {
            let a = aug.apply(&x, &mut StdRng::seed_from_u64(seed));
            let b = aug.apply(&x, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn slicing_within_range(x in series(), seed in 0u64..1000, ratio in 0.2f32..0.95) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Augmentation::Slicing { ratio }.apply(&x, &mut rng);
        let lo = x.iter().copied().fold(f32::MAX, f32::min);
        let hi = x.iter().copied().fold(f32::MIN, f32::max);
        prop_assert!(y.iter().all(|&v| v >= lo - 1e-3 && v <= hi + 1e-3));
    }

    #[test]
    fn resample_roundtrip_close(x in prop::collection::vec(-10f32..10f32, 4..64)) {
        // Upsample then downsample back: endpoints must be exact.
        let up = linear_resample(&x, x.len() * 4);
        let back = linear_resample(&up, x.len());
        prop_assert!((back[0] - x[0]).abs() < 1e-4);
        prop_assert!((back[x.len()-1] - x[x.len()-1]).abs() < 1e-4);
    }

    #[test]
    fn jitter_preserves_length_and_finiteness(x in series(), seed in 0u64..1000, sigma in 0.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Augmentation::Jitter { sigma }.apply(&x, &mut rng);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scaling_preserves_length_and_finiteness(x in series(), seed in 0u64..1000, sigma in 0.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Augmentation::Scaling { sigma }.apply(&x, &mut rng);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
        // Scaling is a single multiplicative factor: zeros stay zeros.
        for (a, b) in x.iter().zip(&y) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            }
        }
    }

    #[test]
    fn slicing_outputs_documented_length(x in series(), seed in 0u64..1000, ratio in 0.2f32..0.95) {
        // Slicing crops a window and resamples back: output length == input
        // length, the documented contract relied on by the pretrain loop.
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Augmentation::Slicing { ratio }.apply(&x, &mut rng);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn window_warp_outputs_documented_length(
        x in series(),
        seed in 0u64..1000,
        ratio in 0.1f32..0.6,
        scale in prop::sample::select(vec![0.5f32, 2.0]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y = Augmentation::WindowWarp { ratio, scale }.apply(&x, &mut rng);
        prop_assert_eq!(y.len(), x.len());
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn resample_constant_series_roundtrip(c in -50f32..50.0, n in 3usize..80, m in 3usize..80) {
        // Linear interpolation of a constant series is exactly that
        // constant at every target length, up and back down.
        let x = vec![c; n];
        let up = linear_resample(&x, m);
        prop_assert_eq!(up.len(), m);
        for v in &up {
            prop_assert!((v - c).abs() < 1e-4, "resampled {} vs constant {}", v, c);
        }
        let back = linear_resample(&up, n);
        for v in &back {
            prop_assert!((v - c).abs() < 1e-4, "roundtrip {} vs constant {}", v, c);
        }
    }

    #[test]
    fn permutation_multiset_invariant(x in series(), seed in 0u64..1000, k in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = Augmentation::Permutation { segments: k }.apply(&x, &mut rng);
        let mut xs = x.clone();
        xs.sort_by(f32::total_cmp);
        y.sort_by(f32::total_cmp);
        prop_assert_eq!(xs, y);
    }
}
