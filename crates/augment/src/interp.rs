//! Interpolation helpers shared by the warping augmentations.

use rand::rngs::StdRng;

/// Sample `x` at fractional position `p` by linear interpolation,
/// clamping to the valid range.
pub(crate) fn sample_at(x: &[f32], p: f32) -> f32 {
    let n = x.len();
    let p = p.clamp(0.0, (n - 1) as f32);
    let i = p.floor() as usize;
    let frac = p - i as f32;
    if i + 1 >= n {
        x[n - 1]
    } else {
        x[i] * (1.0 - frac) + x[i + 1] * frac
    }
}

/// Linearly resample a series to `target_len` points, preserving endpoints.
pub fn linear_resample(x: &[f32], target_len: usize) -> Vec<f32> {
    assert!(!x.is_empty(), "cannot resample empty series");
    assert!(target_len >= 1);
    if target_len == 1 {
        return vec![x[0]];
    }
    if x.len() == 1 {
        return vec![x[0]; target_len];
    }
    let scale = (x.len() - 1) as f32 / (target_len - 1) as f32;
    (0..target_len)
        .map(|i| sample_at(x, i as f32 * scale))
        .collect()
}

/// A smooth random curve of length `n`: `knots` control values drawn from
/// `N(mean, sigma²)` linearly interpolated across the series. Used by time
/// and magnitude warping.
pub fn smooth_curve(n: usize, knots: usize, mean: f32, sigma: f32, rng: &mut StdRng) -> Vec<f32> {
    use rand::Rng;
    let k = knots.max(2);
    let control: Vec<f32> = (0..k)
        .map(|_| {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            mean + sigma * z
        })
        .collect();
    linear_resample(&control, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn resample_identity_length() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(linear_resample(&x, 3), x);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let x = vec![5.0, 1.0, 9.0, 2.0];
        let y = linear_resample(&x, 11);
        assert_eq!(y[0], 5.0);
        assert_eq!(*y.last().unwrap(), 2.0);
        assert_eq!(y.len(), 11);
    }

    #[test]
    fn resample_downsamples_monotone() {
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y = linear_resample(&x, 10);
        assert!(y.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn resample_to_one() {
        assert_eq!(linear_resample(&[3.0, 7.0], 1), vec![3.0]);
    }

    #[test]
    fn sample_at_midpoint() {
        assert_eq!(sample_at(&[0.0, 10.0], 0.5), 5.0);
        assert_eq!(sample_at(&[0.0, 10.0], 5.0), 10.0); // clamps
    }

    #[test]
    fn smooth_curve_stats() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = smooth_curve(200, 8, 1.0, 0.0, &mut rng);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}
