//! # aimts-augment
//!
//! The time-series data-augmentation bank used by AimTS pre-training.
//! Following the paper (§V-A.4, after Iwana & Uchida 2021 / InfoTS /
//! AutoTCL), the default bank contains five augmentations: **jittering,
//! scaling, time warping, slicing, and window warping**. Two further
//! augmentations (permutation, magnitude warping) are provided for
//! ablations and extensions.
//!
//! Every augmentation is a pure function of the input and a caller-owned
//! RNG, preserves series length, and is applied independently per variable
//! of a multivariate sample (paper Definition 3).
//!
//! ```
//! use aimts_augment::default_bank;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.2).sin()).collect();
//! let mut rng = StdRng::seed_from_u64(0);
//! for aug in default_bank() {
//!     let y = aug.apply(&x, &mut rng);
//!     assert_eq!(y.len(), x.len());
//! }
//! ```

mod interp;

pub use interp::{linear_resample, smooth_curve};

use rand::rngs::StdRng;
use rand::Rng;

/// A single augmentation operator `g(·)` with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Augmentation {
    /// Add i.i.d. Gaussian noise with standard deviation `sigma`.
    Jitter { sigma: f32 },
    /// Multiply the whole series by a factor drawn from `N(1, sigma²)`.
    Scaling { sigma: f32 },
    /// Warp the time axis with a smooth random curve built from `knots`
    /// control points with speed deviation `sigma`.
    TimeWarp { knots: usize, sigma: f32 },
    /// Crop a random window covering `ratio` of the series and linearly
    /// interpolate it back to the original length (Le Guennec et al. 2016).
    Slicing { ratio: f32 },
    /// Stretch or compress a random window covering `ratio` of the series
    /// by `scale`, then resample to the original length.
    WindowWarp { ratio: f32, scale: f32 },
    /// Split into `segments` chunks and shuffle their order (extension).
    Permutation { segments: usize },
    /// Multiply by a smooth random curve around 1 (extension).
    MagnitudeWarp { knots: usize, sigma: f32 },
}

impl Augmentation {
    /// Stable short name used in reports and prototypes.
    pub fn name(&self) -> &'static str {
        match self {
            Augmentation::Jitter { .. } => "jitter",
            Augmentation::Scaling { .. } => "scaling",
            Augmentation::TimeWarp { .. } => "time_warp",
            Augmentation::Slicing { .. } => "slicing",
            Augmentation::WindowWarp { .. } => "window_warp",
            Augmentation::Permutation { .. } => "permutation",
            Augmentation::MagnitudeWarp { .. } => "magnitude_warp",
        }
    }

    /// Apply to a single variable, returning a series of the same length.
    pub fn apply(&self, x: &[f32], rng: &mut StdRng) -> Vec<f32> {
        assert!(!x.is_empty(), "cannot augment an empty series");
        match *self {
            Augmentation::Jitter { sigma } => x.iter().map(|v| v + sigma * randn(rng)).collect(),
            Augmentation::Scaling { sigma } => {
                let s = 1.0 + sigma * randn(rng);
                x.iter().map(|v| v * s).collect()
            }
            Augmentation::TimeWarp { knots, sigma } => time_warp(x, knots, sigma, rng),
            Augmentation::Slicing { ratio } => slicing(x, ratio, rng),
            Augmentation::WindowWarp { ratio, scale } => window_warp(x, ratio, scale, rng),
            Augmentation::Permutation { segments } => permutation(x, segments, rng),
            Augmentation::MagnitudeWarp { knots, sigma } => {
                let curve = smooth_curve(x.len(), knots, 1.0, sigma, rng);
                x.iter().zip(&curve).map(|(v, c)| v * c).collect()
            }
        }
    }

    /// Apply to a multivariate sample (`vars[m]` = series of variable `m`),
    /// drawing fresh randomness per variable.
    pub fn apply_multivariate(&self, vars: &[Vec<f32>], rng: &mut StdRng) -> Vec<Vec<f32>> {
        vars.iter().map(|v| self.apply(v, rng)).collect()
    }
}

/// The paper's 5-augmentation bank with the parameterization used across
/// the experiments.
pub fn default_bank() -> Vec<Augmentation> {
    vec![
        Augmentation::Jitter { sigma: 0.1 },
        Augmentation::Scaling { sigma: 0.2 },
        Augmentation::TimeWarp {
            knots: 4,
            sigma: 0.2,
        },
        Augmentation::Slicing { ratio: 0.8 },
        Augmentation::WindowWarp {
            ratio: 0.3,
            scale: 2.0,
        },
    ]
}

/// Extended bank (paper bank + permutation + magnitude warp) for ablations.
pub fn extended_bank() -> Vec<Augmentation> {
    let mut bank = default_bank();
    bank.push(Augmentation::Permutation { segments: 4 });
    bank.push(Augmentation::MagnitudeWarp {
        knots: 4,
        sigma: 0.2,
    });
    bank
}

/// Euclidean distance between two equal-length series (used by the
/// adaptive-temperature distance `D(·,·)` of Eq. 3).
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean distance needs equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

fn randn(rng: &mut StdRng) -> f32 {
    // Box–Muller, single draw.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn time_warp(x: &[f32], knots: usize, sigma: f32, rng: &mut StdRng) -> Vec<f32> {
    let n = x.len();
    if n < 3 {
        return x.to_vec();
    }
    // Smooth positive speed curve; cumulative sum gives warped positions.
    let speed = smooth_curve(n, knots.max(2), 1.0, sigma, rng);
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0f32;
    for s in &speed {
        acc += s.max(0.05);
        cum.push(acc);
    }
    let total = *cum.last().unwrap();
    // Normalize to [0, n-1] and sample the original series there.
    let positions: Vec<f32> = cum.iter().map(|c| (c / total) * (n - 1) as f32).collect();
    positions.iter().map(|&p| interp::sample_at(x, p)).collect()
}

fn slicing(x: &[f32], ratio: f32, rng: &mut StdRng) -> Vec<f32> {
    let n = x.len();
    let w = ((n as f32 * ratio.clamp(0.1, 1.0)).round() as usize).clamp(2.min(n), n);
    if w == n {
        return x.to_vec();
    }
    let start = rng.gen_range(0..=n - w);
    linear_resample(&x[start..start + w], n)
}

fn window_warp(x: &[f32], ratio: f32, scale: f32, rng: &mut StdRng) -> Vec<f32> {
    let n = x.len();
    let w =
        ((n as f32 * ratio.clamp(0.05, 0.9)).round() as usize).clamp(2, n.saturating_sub(1).max(2));
    if w + 1 >= n {
        return x.to_vec();
    }
    let start = rng.gen_range(0..=n - w);
    let warped_len = ((w as f32 * scale).round() as usize).max(2);
    let mut out = Vec::with_capacity(n - w + warped_len);
    out.extend_from_slice(&x[..start]);
    out.extend(linear_resample(&x[start..start + w], warped_len));
    out.extend_from_slice(&x[start + w..]);
    linear_resample(&out, n)
}

fn permutation(x: &[f32], segments: usize, rng: &mut StdRng) -> Vec<f32> {
    let n = x.len();
    let k = segments.clamp(1, n);
    let mut bounds: Vec<usize> = (0..=k).map(|i| i * n / k).collect();
    bounds.dedup();
    let mut chunks: Vec<&[f32]> = bounds.windows(2).map(|w| &x[w[0]..w[1]]).collect();
    // Fisher–Yates shuffle of the chunks.
    for i in (1..chunks.len()).rev() {
        let j = rng.gen_range(0..=i);
        chunks.swap(i, j);
    }
    chunks.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn sine(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.3).sin()).collect()
    }

    #[test]
    fn all_augmentations_preserve_length_and_finiteness() {
        let x = sine(101);
        let mut r = rng(1);
        for aug in extended_bank() {
            let y = aug.apply(&x, &mut r);
            assert_eq!(y.len(), x.len(), "{} changed length", aug.name());
            assert!(
                y.iter().all(|v| v.is_finite()),
                "{} produced NaN",
                aug.name()
            );
        }
    }

    #[test]
    fn jitter_zero_sigma_is_identity() {
        let x = sine(32);
        let y = Augmentation::Jitter { sigma: 0.0 }.apply(&x, &mut rng(2));
        assert_eq!(x, y);
    }

    #[test]
    fn scaling_is_uniform_multiple() {
        let x = sine(32);
        let y = Augmentation::Scaling { sigma: 0.5 }.apply(&x, &mut rng(3));
        let s = y[5] / x[5];
        for (a, b) in x.iter().zip(&y) {
            if a.abs() > 1e-3 {
                assert!((b / a - s).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn slicing_full_ratio_is_identity() {
        let x = sine(64);
        let y = Augmentation::Slicing { ratio: 1.0 }.apply(&x, &mut rng(4));
        assert_eq!(x, y);
    }

    #[test]
    fn slicing_preserves_value_range() {
        let x = sine(64);
        let y = Augmentation::Slicing { ratio: 0.5 }.apply(&x, &mut rng(5));
        let (lo, hi) = x
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(y.iter().all(|&v| v >= lo - 1e-5 && v <= hi + 1e-5));
    }

    #[test]
    fn permutation_preserves_multiset() {
        let x: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let mut y = Augmentation::Permutation { segments: 4 }.apply(&x, &mut rng(6));
        y.sort_by(f32::total_cmp);
        assert_eq!(x, y);
    }

    #[test]
    fn time_warp_keeps_endpoints_region() {
        let x = sine(128);
        let y = Augmentation::TimeWarp {
            knots: 4,
            sigma: 0.2,
        }
        .apply(&x, &mut rng(7));
        // Warp is monotone, so the last sample comes from the end of x.
        assert!((y[127] - x[127]).abs() < 0.2);
    }

    #[test]
    fn two_draws_differ() {
        let x = sine(64);
        let mut r = rng(8);
        let aug = Augmentation::Jitter { sigma: 0.1 };
        let a = aug.apply(&x, &mut r);
        let b = aug.apply(&x, &mut r);
        assert_ne!(
            a, b,
            "different randomized parameters must differ (paper §IV-B.1)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x = sine(64);
        let aug = Augmentation::WindowWarp {
            ratio: 0.3,
            scale: 2.0,
        };
        assert_eq!(aug.apply(&x, &mut rng(9)), aug.apply(&x, &mut rng(9)));
    }

    #[test]
    fn multivariate_applies_per_variable() {
        let vars: Vec<Vec<f32>> = vec![sine(32), sine(32).iter().map(|v| v * 2.0).collect()];
        let out = Augmentation::Jitter { sigma: 0.01 }.apply_multivariate(&vars, &mut rng(10));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 32);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn bank_contents_match_paper() {
        let names: Vec<&str> = default_bank().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["jitter", "scaling", "time_warp", "slicing", "window_warp"]
        );
    }

    #[test]
    fn tiny_series_survive() {
        let x = vec![1.0, 2.0];
        let mut r = rng(11);
        for aug in extended_bank() {
            let y = aug.apply(&x, &mut r);
            assert_eq!(y.len(), 2, "{}", aug.name());
        }
    }
}
