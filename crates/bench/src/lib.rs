//! # aimts-bench
//!
//! Benchmark harness regenerating every table and figure of the AimTS
//! paper on the synthetic archives. Each `[[bench]]` target (run via
//! `cargo bench`) prints the paper-style table plus the paper's reported
//! values for shape comparison, and records JSON under `bench_results/`
//! at the repository root for EXPERIMENTS.md.
//!
//! Scale is controlled by `AIMTS_SCALE` (`quick` default, `full` for a
//! longer run).

pub mod harness;
pub mod memprof;
pub mod runners;

pub use harness::{record_results, Scale};
pub use memprof::{current_bytes, peak_bytes, reset_peak};
