//! Shared experiment plumbing: scale profiles, timing, result recording.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

/// Experiment scale, selected by the `AIMTS_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale defaults (minutes for the whole suite).
    Quick,
    /// Larger archives / more epochs (tens of minutes).
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("AIMTS_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of UCR-like downstream datasets.
    pub fn n_ucr(&self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 24,
        }
    }

    /// Number of UEA-like downstream datasets.
    pub fn n_uea(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }

    /// Samples per source in the Monash-like pre-training pool.
    pub fn pool_per_source(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 24,
        }
    }

    /// Pre-training epochs. The paper uses 2 epochs over the much larger
    /// Monash archive; our pool is smaller, so more passes approximate the
    /// same number of optimizer steps.
    pub fn pretrain_epochs(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 8,
        }
    }

    /// Fine-tuning epochs.
    pub fn finetune_epochs(&self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Full => 60,
        }
    }

    /// Case-by-case pre-training epochs for the contrastive baselines
    /// (their original papers train to convergence on each dataset).
    pub fn baseline_pretrain_epochs(&self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Full => 40,
        }
    }

    /// ROCKET kernel count (paper default is 10k; scaled).
    pub fn rocket_kernels(&self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Full => 2000,
        }
    }
}

/// Time a closure, returning its result and elapsed seconds.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Directory where experiment JSON results land (`<repo>/bench_results`).
pub fn results_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let dir = manifest.join("../../bench_results");
    fs::create_dir_all(&dir).expect("create bench_results dir");
    dir
}

/// Record an experiment's result payload as pretty JSON.
pub fn record_results<T: Serialize>(experiment: &str, payload: &T) {
    let path = results_dir().join(format!("{experiment}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serialize results");
    fs::write(&path, json).expect("write results file");
    println!("[recorded] {}", path.display());
}

/// Standard experiment banner.
pub fn banner(id: &str, paper_ref: &str, description: &str) {
    println!("\n================================================================");
    println!("{id} — {paper_ref}");
    println!("{description}");
    println!(
        "scale = {:?} (set AIMTS_SCALE=full for the long run)",
        Scale::from_env()
    );
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_default_scale() {
        // Only valid when the env var is unset in the test environment.
        if std::env::var("AIMTS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn full_scale_is_bigger() {
        assert!(Scale::Full.n_ucr() > Scale::Quick.n_ucr());
        assert!(Scale::Full.rocket_kernels() > Scale::Quick.rocket_kernels());
    }

    #[test]
    fn time_it_returns_value() {
        let (v, secs) = time_it(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
