//! A counting global allocator measuring current and peak resident heap
//! bytes — the CPU-substrate stand-in for the paper's GPU-memory
//! measurements (Fig. 7c, Fig. 8a–c). The *scaling shape* (linear in data
//! size / length / parameters) is what the experiments compare.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator.
pub struct CountingAllocator;

// SAFETY: every method delegates verbatim to the `System` allocator and
// only adds lock-free atomic bookkeeping on the side, so the GlobalAlloc
// contract (layout fidelity, no unwinding, thread safety) is exactly
// `System`'s.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller upholds GlobalAlloc's `alloc` contract
    // (non-zero-sized layout); we forward it untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same layout, same contract — pure delegation.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: the caller guarantees `ptr` came from this allocator with
    // this `layout`; `System` gets the same pair.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: pure delegation of the caller's (ptr, layout) pair.
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: the caller guarantees `ptr`/`layout` validity and a
    // non-zero `new_size`, which is exactly what `System` requires.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: pure delegation of the caller's arguments.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let cur = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Install in a bench binary with:
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// Reset the peak counter to the current level.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Currently allocated heap bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is only installed in bench binaries; here we only test
    // the counter interface: after a reset the peak equals the current
    // level, and both remain readable.
    #[test]
    fn counters_are_monotone_interface() {
        reset_peak();
        assert!(peak_bytes() >= current_bytes() || peak_bytes() == 0);
    }
}
