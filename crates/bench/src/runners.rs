//! High-level experiment runners shared by the bench targets.

use aimts::{AimTs, AimTsConfig, FineTuneConfig, PretrainConfig};
use aimts_baselines::{BaselineConfig, ContrastiveBaseline, Method};
use aimts_data::{Dataset, MultiSeries};
use aimts_imaging::ImageConfig;

use crate::harness::Scale;

/// The AimTS configuration used by the experiment suite: small enough for
/// CPU training, structured exactly like the paper's model.
pub fn bench_aimts_config() -> AimTsConfig {
    AimTsConfig {
        hidden: 16,
        repr_dim: 32,
        proj_dim: 16,
        dilations: vec![1, 2, 4],
        pretrain_len: 64,
        image: ImageConfig {
            cell: 32,
            ..ImageConfig::default()
        },
        ..AimTsConfig::default()
    }
}

/// Matching baseline encoder configuration (same substrate, different
/// objective — isolates what the comparison should isolate).
pub fn bench_baseline_config() -> BaselineConfig {
    BaselineConfig::from_aimts(&bench_aimts_config())
}

/// Pre-training config per scale.
pub fn bench_pretrain_config(scale: Scale) -> PretrainConfig {
    // Calibrated for the CPU-scale model: 5e-3 (the paper's 7e-3 regime)
    // overshoots at this parameter count and induces negative transfer.
    PretrainConfig {
        epochs: scale.pretrain_epochs(),
        batch_size: 8,
        lr: 1e-3,
        ..PretrainConfig::default()
    }
}

/// Fine-tuning config per scale.
pub fn bench_finetune_config(scale: Scale) -> FineTuneConfig {
    FineTuneConfig {
        epochs: scale.finetune_epochs(),
        batch_size: 8,
        ..FineTuneConfig::default()
    }
}

/// Frozen-representation classifier config — the evaluation protocol the
/// representation-learning baselines' own papers use (e.g. TS2Vec trains
/// an SVM on frozen representations).
pub fn bench_probe_config(scale: Scale) -> FineTuneConfig {
    FineTuneConfig {
        train_encoder: false,
        ..bench_finetune_config(scale)
    }
}

/// Pre-train AimTS on a pool (paper Fig. 3a) and return the model.
pub fn pretrain_aimts(pool: &[MultiSeries], scale: Scale, seed: u64) -> AimTs {
    let mut model = AimTs::new(bench_aimts_config(), seed);
    let report = model
        .pretrain(pool, &bench_pretrain_config(scale))
        .expect("bench pre-training failed");
    eprintln!(
        "  [aimts pretrain] {} steps, final loss {:.4} (proto {:.4}, si {:.4})",
        report.steps, report.final_loss, report.final_proto_loss, report.final_si_loss
    );
    model
}

/// The standard-pool AimTS model shared by the table benches: pre-train
/// once per scale and cache the checkpoint under `bench_results/`, so a
/// `cargo bench --workspace` run does not repeat the identical
/// (pool, config, seed) pre-training in every bench target.
pub fn pretrain_aimts_standard(scale: Scale, seed: u64) -> AimTs {
    let cache = crate::harness::results_dir()
        .join(format!(".cache_aimts_{scale:?}_{seed}.json").to_lowercase());
    if cache.exists() {
        let mut model = AimTs::new(bench_aimts_config(), seed);
        if model.load(&cache).is_ok() {
            eprintln!(
                "  [aimts pretrain] reusing cached checkpoint {}",
                cache.display()
            );
            return model;
        }
    }
    let pool = aimts_data::archives::monash_like_pool(scale.pool_per_source(), 0);
    eprintln!("  pre-training pool: {} samples", pool.len());
    let model = pretrain_aimts(&pool, scale, seed);
    if let Err(e) = model.save(&cache) {
        eprintln!("  [aimts pretrain] could not cache checkpoint: {e}");
    }
    model
}

/// Fine-tune the pre-trained AimTS on a dataset and report test accuracy.
pub fn finetune_eval_aimts(model: &AimTs, ds: &Dataset, scale: Scale) -> f64 {
    let tuned = model.fine_tune(ds, &bench_finetune_config(scale));
    tuned.evaluate(&ds.test)
}

/// Case-by-case contrastive baseline: pre-train on the dataset's own
/// (unlabeled) training split to convergence, then train a classifier on
/// *frozen* representations — the evaluation protocol of the baselines'
/// own papers, which the AimTS Table I comparison inherits.
pub fn baseline_case_by_case(method: Method, ds: &Dataset, scale: Scale, seed: u64) -> f64 {
    let mut b = ContrastiveBaseline::new(method, bench_baseline_config(), seed);
    let pool = ds.unlabeled_train();
    b.pretrain(&pool, scale.baseline_pretrain_epochs(), 8, 5e-3, seed);
    let tuned = b.fine_tune(ds, &bench_probe_config(scale));
    tuned.evaluate(&ds.test)
}

/// Multi-source contrastive baseline: pre-train once on a pool, then train
/// the frozen-representation classifier per dataset — the same protocol as
/// [`baseline_case_by_case`], so the Fig. 8d comparison isolates the
/// pre-training corpus.
pub fn baseline_multi_source(
    method: Method,
    pool: &[MultiSeries],
    datasets: &[&Dataset],
    scale: Scale,
    seed: u64,
) -> Vec<f64> {
    let mut b = ContrastiveBaseline::new(method, bench_baseline_config(), seed);
    b.pretrain(pool, scale.baseline_pretrain_epochs(), 8, 5e-3, seed);
    datasets
        .iter()
        .map(|ds| {
            b.fine_tune(ds, &bench_probe_config(scale))
                .evaluate(&ds.test)
        })
        .collect()
}
