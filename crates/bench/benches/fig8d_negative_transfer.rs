//! Fig. 8(d) — the multi-source pre-training challenge: TS2Vec trained
//! case-by-case vs TS2Vec pre-trained on a multi-source pool vs AimTS,
//! on 5 downstream datasets. The paper shows multi-source pre-training
//! *hurts* TS2Vec (negative transfer) while AimTS benefits from it.

use aimts_baselines::Method;
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{
    baseline_case_by_case, baseline_multi_source, finetune_eval_aimts, pretrain_aimts,
};
use aimts_data::archives::ucr_like_archive;
use aimts_data::{Dataset, MultiSeries};
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Payload {
    datasets: Vec<String>,
    ts2vec_case_by_case: Vec<f64>,
    ts2vec_multi_source: Vec<f64>,
    aimts: Vec<f64>,
    paper_note: String,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "fig8d_negative_transfer",
        "Paper Fig. 8(d)",
        "TS2Vec case-by-case vs TS2Vec multi-source vs AimTS on 5 downstream datasets",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let suite = ucr_like_archive(5, 42);
        let refs: Vec<&Dataset> = suite.iter().collect();
        // Paper protocol: both multi-source models pre-train on the pooled
        // UCR training data.
        let pool: Vec<MultiSeries> = suite.iter().flat_map(|d| d.unlabeled_train()).collect();

        let case: Vec<f64> = suite
            .iter()
            .map(|ds| baseline_case_by_case(Method::Ts2Vec, ds, scale, 100))
            .collect();
        let multi = baseline_multi_source(Method::Ts2Vec, &pool, &refs, scale, 100);
        let model = pretrain_aimts(&pool, scale, 3407);
        let aimts: Vec<f64> = suite
            .iter()
            .map(|ds| finetune_eval_aimts(&model, ds, scale))
            .collect();

        println!(
            "{:<26} {:>14} {:>14} {:>8}",
            "dataset", "TS2Vec(case)", "TS2Vec(multi)", "AimTS"
        );
        for (i, ds) in suite.iter().enumerate() {
            println!(
                "{:<26} {:>14.3} {:>14.3} {:>8.3}",
                ds.name, case[i], multi[i], aimts[i]
            );
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:<26} {:>14.3} {:>14.3} {:>8.3}",
            "Avg. ACC",
            mean(&case),
            mean(&multi),
            mean(&aimts)
        );
        println!("\npaper Fig. 8d: TS2Vec multi-source < TS2Vec case-by-case (negative transfer),");
        println!("while AimTS with the same multi-source data performs best.");
        Payload {
            datasets: suite.iter().map(|d| d.name.clone()).collect(),
            ts2vec_case_by_case: case,
            ts2vec_multi_source: multi,
            aimts,
            paper_note: "paper: TS2Vec degrades under multi-source pre-training; AimTS improves"
                .into(),
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("fig8d_negative_transfer", &payload);
    println!("total: {elapsed:.1}s");
}
