//! Fig. 7(a)(b) — hyper-parameter sensitivity of α (inter/intra weight),
//! β (naive/mixup weight) and γ (Beta parameter of the mixup coefficient)
//! on the three AllGestureWiimote-like datasets.

use aimts::{AimTs, AimTsConfig};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{bench_aimts_config, bench_finetune_config, bench_pretrain_config};
use aimts_data::archives::monash_like_pool;
use aimts_data::special::allgesture_like;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Payload {
    alpha_values: Vec<f32>,
    alpha_acc: Vec<f64>,
    beta_values: Vec<f32>,
    beta_acc: Vec<f64>,
    gamma_values: Vec<f32>,
    gamma_acc: Vec<f64>,
    paper_note: String,
    elapsed_secs: f64,
}

fn eval_config(cfg: AimTsConfig, scale: Scale, pool: &[aimts_data::MultiSeries]) -> f64 {
    let mut model = AimTs::new(cfg, 3407);
    // Smaller budget for sweeps: the paper reports sensitivity, not SOTA.
    let mut pcfg = bench_pretrain_config(scale);
    pcfg.epochs = pcfg.epochs.min(2);
    model
        .pretrain(pool, &pcfg)
        .expect("bench pre-training failed");
    let fcfg = bench_finetune_config(scale);
    let accs: Vec<f64> = (0..3)
        .map(|axis| {
            let ds = allgesture_like(axis, 5);
            model.fine_tune(&ds, &fcfg).evaluate(&ds.test)
        })
        .collect();
    accs.iter().sum::<f64>() / accs.len() as f64
}

fn main() {
    banner(
        "fig7ab_sensitivity",
        "Paper Fig. 7(a)(b)",
        "sensitivity of alpha / beta / gamma on AllGestureWiimote-like datasets",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let pool = monash_like_pool(4, 0);
        let alphas = [0.6f32, 0.75, 0.9];
        let betas = [0.6f32, 0.75, 0.9];
        let gammas = [0.1f32, 0.4, 0.7];

        let mut alpha_acc = Vec::new();
        for &a in &alphas {
            let cfg = AimTsConfig {
                alpha: a,
                beta: 0.9,
                gamma: 0.1,
                ..bench_aimts_config()
            };
            let acc = eval_config(cfg, scale, &pool);
            println!("alpha = {a:.1}: Avg.ACC {acc:.3}");
            alpha_acc.push(acc);
        }
        let mut beta_acc = Vec::new();
        for &b in &betas {
            let cfg = AimTsConfig {
                alpha: 0.7,
                beta: b,
                gamma: 0.1,
                ..bench_aimts_config()
            };
            let acc = eval_config(cfg, scale, &pool);
            println!("beta  = {b:.1}: Avg.ACC {acc:.3}");
            beta_acc.push(acc);
        }
        let mut gamma_acc = Vec::new();
        for &g in &gammas {
            let cfg = AimTsConfig {
                alpha: 0.7,
                beta: 0.9,
                gamma: g,
                ..bench_aimts_config()
            };
            let acc = eval_config(cfg, scale, &pool);
            println!("gamma = {g:.1}: Avg.ACC {acc:.3}");
            gamma_acc.push(acc);
        }
        let spread = |v: &[f64]| {
            let mx = v.iter().cloned().fold(f64::MIN, f64::max);
            let mn = v.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        println!(
            "\nspread: alpha {:.3}, beta {:.3}, gamma {:.3}",
            spread(&alpha_acc),
            spread(&beta_acc),
            spread(&gamma_acc)
        );
        println!("paper: all three parameters have limited impact (flat curves).");
        Payload {
            alpha_values: alphas.to_vec(),
            alpha_acc,
            beta_values: betas.to_vec(),
            beta_acc,
            gamma_values: gammas.to_vec(),
            gamma_acc,
            paper_note: "paper Fig. 7a/b: accuracy varies only slightly across alpha/beta/gamma"
                .into(),
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("fig7ab_sensitivity", &payload);
    println!("total: {elapsed:.1}s");
}
