//! Table I — comparison with representation-learning methods in the
//! case-by-case paradigm on the UCR-like and UEA-like archives.
//!
//! Protocol (paper §V-B.1): AimTS is pre-trained once on the Monash-like
//! multi-source pool and fine-tuned per dataset; each contrastive baseline
//! is trained case-by-case on each dataset. Columns are the subset of
//! Table I's methods re-implemented in `aimts-baselines` (TS2Vec, TS-TCC,
//! TNC, T-Loss); the remaining columns of the original table came from
//! other papers' reported numbers even in the original.

use aimts_baselines::Method;
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{baseline_case_by_case, finetune_eval_aimts, pretrain_aimts_standard};
use aimts_data::archives::{ucr_like_archive, uea_like_archive};
use aimts_data::Dataset;
use aimts_eval::ResultTable;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 5] = ["AimTS", "TS2Vec", "TS-TCC", "TNC", "T-Loss"];

#[derive(Serialize)]
struct Payload {
    methods: Vec<String>,
    ucr_rows: Vec<(String, Vec<f64>)>,
    uea_rows: Vec<(String, Vec<f64>)>,
    ucr_avg_acc: Vec<f64>,
    uea_avg_acc: Vec<f64>,
    ucr_avg_rank: Vec<f64>,
    uea_avg_rank: Vec<f64>,
    paper_ucr_avg_acc: Vec<f64>,
    paper_uea_avg_acc: Vec<f64>,
    elapsed_secs: f64,
}

fn run_suite(title: &str, datasets: &[Dataset], model: &aimts::AimTs, scale: Scale) -> ResultTable {
    let mut table = ResultTable::new(title, &METHODS);
    for (i, ds) in datasets.iter().enumerate() {
        eprintln!("  dataset {}/{}: {}", i + 1, datasets.len(), ds.name);
        let mut row = vec![finetune_eval_aimts(model, ds, scale)];
        for (mi, m) in [Method::Ts2Vec, Method::TsTcc, Method::Tnc, Method::TLoss]
            .into_iter()
            .enumerate()
        {
            row.push(baseline_case_by_case(m, ds, scale, 100 + mi as u64));
        }
        table.push_row(ds.name.clone(), row);
    }
    table
}

fn main() {
    banner(
        "table1_repr_learning",
        "Paper Table I (+ data for Fig. 6)",
        "AimTS (multi-source pre-trained) vs case-by-case contrastive baselines",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let model = pretrain_aimts_standard(scale, 3407);

        let ucr = ucr_like_archive(scale.n_ucr(), 42);
        let uea = uea_like_archive(scale.n_uea(), 42);
        let t_ucr = run_suite("UCR-like archive (univariate)", &ucr, &model, scale);
        let t_uea = run_suite("UEA-like archive (multivariate)", &uea, &model, scale);
        println!("{}", t_ucr.render());
        println!("{}", t_uea.render());

        println!("paper reports (125 UCR): Avg.ACC AimTS 0.870 | TS2Vec 0.830 | TS-TCC 0.757 | TNC 0.761 | T-Loss 0.806");
        println!("paper reports (30 UEA):  Avg.ACC AimTS 0.780 | TS2Vec 0.704 | TS-TCC 0.668 | TNC 0.670 | T-Loss 0.658");
        println!("shape check: AimTS should lead both Avg.ACC columns and the rank ordering.");

        Payload {
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            ucr_avg_acc: t_ucr.avg_acc(),
            uea_avg_acc: t_uea.avg_acc(),
            ucr_avg_rank: t_ucr.avg_rank(),
            uea_avg_rank: t_uea.avg_rank(),
            ucr_rows: t_ucr.rows,
            uea_rows: t_uea.rows,
            paper_ucr_avg_acc: vec![0.870, 0.830, 0.757, 0.761, 0.806],
            paper_uea_avg_acc: vec![0.780, 0.704, 0.668, 0.670, 0.658],
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table1_repr_learning", &payload);
    println!("total: {elapsed:.1}s");
}
