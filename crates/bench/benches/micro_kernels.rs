//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: augmentation bank, line-chart rasterization, TS-encoder
//! forward/backward, geodesic mixup + contrastive losses, the ROCKET
//! transform, and DTW.

use aimts::losses::{inter_prototype_loss, series_image_naive};
use aimts::mixup::geodesic_mixup;
use aimts::TsEncoder;
use aimts_augment::default_bank;
use aimts_baselines::nn1::dtw;
use aimts_baselines::Rocket;
use aimts_imaging::{render_sample, ImageConfig};
use aimts_nn::Module;
use aimts_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn series(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.17).sin()).collect()
}

fn bench_augmentations(c: &mut Criterion) {
    let x = series(128);
    let mut g = c.benchmark_group("augment");
    for aug in default_bank() {
        g.bench_function(aug.name(), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| black_box(aug.apply(black_box(&x), &mut rng)));
        });
    }
    g.finish();
}

fn bench_imaging(c: &mut Criterion) {
    let vars = vec![series(128)];
    let cfg = ImageConfig::default();
    c.bench_function("imaging/render_64px", |b| {
        b.iter(|| black_box(render_sample(black_box(&vars), &cfg)))
    });
    let multi: Vec<Vec<f32>> = (0..4).map(|_| series(128)).collect();
    c.bench_function("imaging/render_4var", |b| {
        b.iter(|| black_box(render_sample(black_box(&multi), &cfg)))
    });
}

/// Direct vs im2col conv1d/conv2d on the exact shapes the AimTS encoders
/// run (see `aimts::config::AimTsConfig`): hidden=32 channels, dilations
/// {1, 2, 4}, pretrain length 64, plus the univariate input conv and the
/// image encoder's first conv2d. The im2col path is expected to beat
/// direct by >= 2x on the channel-mixing shapes.
fn bench_conv_lowerings(c: &mut Criterion) {
    use aimts_tensor::ops::{Conv1dSpec, Conv2dSpec};

    let mut g = c.benchmark_group("conv1d");
    // [B=8, C=32, L=64] x [32, 32, 3], the residual-block workhorse.
    let x = Tensor::randn(&[8, 32, 64], 1);
    let w = Tensor::randn(&[32, 32, 3], 2);
    for dilation in [1usize, 2, 4] {
        let spec = Conv1dSpec::same(3, dilation);
        g.bench_function(format!("direct_b8_c32_l64_d{dilation}"), |b| {
            b.iter(|| {
                aimts_tensor::no_grad(|| black_box(x.conv1d_direct(black_box(&w), None, spec)))
            })
        });
        g.bench_function(format!("im2col_b8_c32_l64_d{dilation}"), |b| {
            b.iter(|| {
                aimts_tensor::no_grad(|| black_box(x.conv1d_im2col(black_box(&w), None, spec)))
            })
        });
    }
    // Univariate input conv: [B=8, C=1, L=64] x [32, 1, 3].
    let x1 = Tensor::randn(&[8, 1, 64], 3);
    let w1 = Tensor::randn(&[32, 1, 3], 4);
    let spec = Conv1dSpec::same(3, 1);
    g.bench_function("direct_b8_c1to32_l64", |b| {
        b.iter(|| aimts_tensor::no_grad(|| black_box(x1.conv1d_direct(black_box(&w1), None, spec))))
    });
    g.bench_function("im2col_b8_c1to32_l64", |b| {
        b.iter(|| aimts_tensor::no_grad(|| black_box(x1.conv1d_im2col(black_box(&w1), None, spec))))
    });
    g.finish();

    let mut g = c.benchmark_group("conv2d");
    // Image-encoder first conv: [B=8, C=1, 32, 32] x [32, 1, 3, 3].
    let xi = Tensor::randn(&[8, 1, 32, 32], 5);
    let wi = Tensor::randn(&[32, 1, 3, 3], 6);
    let spec2 = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    g.bench_function("direct_b8_c1to32_32x32", |b| {
        b.iter(|| {
            aimts_tensor::no_grad(|| black_box(xi.conv2d_direct(black_box(&wi), None, spec2)))
        })
    });
    g.bench_function("im2col_b8_c1to32_32x32", |b| {
        b.iter(|| {
            aimts_tensor::no_grad(|| black_box(xi.conv2d_im2col(black_box(&wi), None, spec2)))
        })
    });
    g.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let enc = TsEncoder::new(16, 32, &[1, 2, 4], 0);
    let x = Tensor::randn(&[8, 1, 128], 1);
    c.bench_function("encoder/forward_b8_l128", |b| {
        b.iter(|| aimts_tensor::no_grad(|| black_box(enc.encode_rows(black_box(&x)))))
    });
    c.bench_function("encoder/forward_backward_b8_l128", |b| {
        b.iter(|| {
            let y = enc.encode_rows(black_box(&x));
            y.square().sum_all().backward();
            enc.parameters().iter().for_each(|p| p.zero_grad());
        })
    });
}

fn bench_losses(c: &mut Criterion) {
    let u = Tensor::randn(&[16, 32], 1).l2_normalize(1);
    let v = Tensor::randn(&[16, 32], 2).l2_normalize(1);
    c.bench_function("loss/series_image_naive_b16", |b| {
        b.iter(|| black_box(series_image_naive(black_box(&u), black_box(&v), 0.2)))
    });
    c.bench_function("loss/inter_prototype_b16", |b| {
        b.iter(|| black_box(inter_prototype_loss(black_box(&u), black_box(&v), 0.2)))
    });
    let lambdas: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
    c.bench_function("loss/geodesic_mixup_b16", |b| {
        b.iter(|| black_box(geodesic_mixup(black_box(&u), black_box(&v), &lambdas)))
    });
}

fn bench_classical(c: &mut Criterion) {
    let rocket = Rocket::new(100, 128, 0);
    let x = series(128);
    c.bench_function("rocket/transform_100k_l128", |b| {
        b.iter(|| black_box(rocket.transform_series(black_box(&x))))
    });
    let a = series(128);
    let bb = series(128);
    c.bench_function("dtw/l128_band10", |b| {
        b.iter(|| black_box(dtw(black_box(&a), black_box(&bb), 0.1)))
    });
}

criterion_group!(
    benches,
    bench_augmentations,
    bench_imaging,
    bench_conv_lowerings,
    bench_encoder,
    bench_losses,
    bench_classical
);
criterion_main!(benches);
