//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: augmentation bank, line-chart rasterization, TS-encoder
//! forward/backward, geodesic mixup + contrastive losses, the ROCKET
//! transform, and DTW.

use aimts::losses::{inter_prototype_loss, series_image_naive};
use aimts::mixup::geodesic_mixup;
use aimts::TsEncoder;
use aimts_nn::Module;
use aimts_augment::default_bank;
use aimts_baselines::nn1::dtw;
use aimts_baselines::Rocket;
use aimts_imaging::{render_sample, ImageConfig};
use aimts_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn series(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.17).sin()).collect()
}

fn bench_augmentations(c: &mut Criterion) {
    let x = series(128);
    let mut g = c.benchmark_group("augment");
    for aug in default_bank() {
        g.bench_function(aug.name(), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| black_box(aug.apply(black_box(&x), &mut rng)));
        });
    }
    g.finish();
}

fn bench_imaging(c: &mut Criterion) {
    let vars = vec![series(128)];
    let cfg = ImageConfig::default();
    c.bench_function("imaging/render_64px", |b| {
        b.iter(|| black_box(render_sample(black_box(&vars), &cfg)))
    });
    let multi: Vec<Vec<f32>> = (0..4).map(|_| series(128)).collect();
    c.bench_function("imaging/render_4var", |b| {
        b.iter(|| black_box(render_sample(black_box(&multi), &cfg)))
    });
}

fn bench_encoder(c: &mut Criterion) {
    let enc = TsEncoder::new(16, 32, &[1, 2, 4], 0);
    let x = Tensor::randn(&[8, 1, 128], 1);
    c.bench_function("encoder/forward_b8_l128", |b| {
        b.iter(|| aimts_tensor::no_grad(|| black_box(enc.encode_rows(black_box(&x)))))
    });
    c.bench_function("encoder/forward_backward_b8_l128", |b| {
        b.iter(|| {
            let y = enc.encode_rows(black_box(&x));
            y.square().sum_all().backward();
            enc.parameters().iter().for_each(|p| p.zero_grad());
        })
    });
}

fn bench_losses(c: &mut Criterion) {
    let u = Tensor::randn(&[16, 32], 1).l2_normalize(1);
    let v = Tensor::randn(&[16, 32], 2).l2_normalize(1);
    c.bench_function("loss/series_image_naive_b16", |b| {
        b.iter(|| black_box(series_image_naive(black_box(&u), black_box(&v), 0.2)))
    });
    c.bench_function("loss/inter_prototype_b16", |b| {
        b.iter(|| black_box(inter_prototype_loss(black_box(&u), black_box(&v), 0.2)))
    });
    let lambdas: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
    c.bench_function("loss/geodesic_mixup_b16", |b| {
        b.iter(|| black_box(geodesic_mixup(black_box(&u), black_box(&v), &lambdas)))
    });
}

fn bench_classical(c: &mut Criterion) {
    let rocket = Rocket::new(100, 128, 0);
    let x = series(128);
    c.bench_function("rocket/transform_100k_l128", |b| {
        b.iter(|| black_box(rocket.transform_series(black_box(&x))))
    });
    let a = series(128);
    let bb = series(128);
    c.bench_function("dtw/l128_band10", |b| {
        b.iter(|| black_box(dtw(black_box(&a), black_box(&bb), 0.1)))
    });
}

criterion_group!(
    benches,
    bench_augmentations,
    bench_imaging,
    bench_encoder,
    bench_losses,
    bench_classical
);
criterion_main!(benches);
