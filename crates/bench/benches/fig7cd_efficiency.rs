//! Fig. 7(c)(d) — peak memory and total (train/fine-tune + inference)
//! time on the StarLightCurves-like dataset, batch size 8, 10 epochs,
//! matching the paper's protocol. Memory is peak heap via the counting
//! allocator (the CPU stand-in for GPU memory).

use aimts::FineTuneConfig;
use aimts_baselines::{ContrastiveBaseline, FcnClassifier, Method, RocketClassifier};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::{peak_bytes, reset_peak, CountingAllocator};
use aimts_bench::runners::{bench_baseline_config, pretrain_aimts_standard};
use aimts_data::special::starlight_like;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Row {
    method: String,
    peak_mb: f64,
    total_secs: f64,
    accuracy: f64,
}

#[derive(Serialize)]
struct Payload {
    rows: Vec<Row>,
    paper_note: String,
}

fn main() {
    banner(
        "fig7cd_efficiency",
        "Paper Fig. 7(c)(d)",
        "peak memory + total fine-tune/train + inference time on StarLightCurves-like (batch 8, 10 epochs)",
    );
    let scale = Scale::from_env();
    let ds = starlight_like(3);
    let fcfg = FineTuneConfig {
        epochs: 10,
        batch_size: 8,
        ..Default::default()
    };
    let mut rows: Vec<Row> = Vec::new();

    // AimTS: fine-tune a pre-trained model + inference.
    let model = pretrain_aimts_standard(scale, 3407);
    reset_peak();
    let ((), secs) = time_it(|| {
        let tuned = model.fine_tune(&ds, &fcfg);
        let acc = tuned.evaluate(&ds.test);
        rows.push(Row {
            method: "AimTS".into(),
            peak_mb: 0.0,
            total_secs: 0.0,
            accuracy: acc,
        });
    });
    rows.last_mut().unwrap().peak_mb = peak_bytes() as f64 / 1e6;
    rows.last_mut().unwrap().total_secs = secs;

    // TS2Vec: case-by-case pre-train + classifier + inference.
    reset_peak();
    let ((), secs) = time_it(|| {
        let mut b = ContrastiveBaseline::new(Method::Ts2Vec, bench_baseline_config(), 1);
        b.pretrain(&ds.unlabeled_train(), 10, 8, 5e-3, 1);
        let tuned = b.fine_tune(&ds, &fcfg);
        let acc = tuned.evaluate(&ds.test);
        rows.push(Row {
            method: "TS2Vec".into(),
            peak_mb: 0.0,
            total_secs: 0.0,
            accuracy: acc,
        });
    });
    rows.last_mut().unwrap().peak_mb = peak_bytes() as f64 / 1e6;
    rows.last_mut().unwrap().total_secs = secs;

    // FCN (supervised deep stand-in).
    reset_peak();
    let ((), secs) = time_it(|| {
        let mut fcn = FcnClassifier::new(ds.n_vars(), 16, ds.n_classes, 2);
        fcn.fit(&ds, 10, 8, 1e-2, 2);
        let acc = fcn.evaluate(&ds.test);
        rows.push(Row {
            method: "FCN".into(),
            peak_mb: 0.0,
            total_secs: 0.0,
            accuracy: acc,
        });
    });
    rows.last_mut().unwrap().peak_mb = peak_bytes() as f64 / 1e6;
    rows.last_mut().unwrap().total_secs = secs;

    // ROCKET.
    reset_peak();
    let ((), secs) = time_it(|| {
        let mut r = RocketClassifier::new(scale.rocket_kernels(), ds.series_len(), 3);
        r.fit(&ds);
        let acc = r.evaluate(&ds.test);
        rows.push(Row {
            method: "Rocket".into(),
            peak_mb: 0.0,
            total_secs: 0.0,
            accuracy: acc,
        });
    });
    rows.last_mut().unwrap().peak_mb = peak_bytes() as f64 / 1e6;
    rows.last_mut().unwrap().total_secs = secs;

    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "method", "peak MB", "total s", "acc"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10.1} {:>10.2} {:>8.3}",
            r.method, r.peak_mb, r.total_secs, r.accuracy
        );
    }
    println!("\npaper Fig. 7c/d: AimTS fine-tuning uses the least memory (927 MB) and time (75 s)");
    println!("among the deep methods; shape check: AimTS fine-tune cost ~= supervised FCN, well");
    println!("below case-by-case contrastive pre-training, with Rocket cheapest overall.");
    record_results(
        "fig7cd_efficiency",
        &Payload {
            rows,
            paper_note: "paper: AimTS 927MB/75s best of deep methods on StarLightCurves".into(),
        },
    );
}
