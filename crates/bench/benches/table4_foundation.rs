//! Table IV — comparison with the multi-source adaptation paradigm:
//! MOMENT-like (masked reconstruction) and UniTS-like (supervised
//! multi-task) foundation models, evaluated on the UCR-like and UEA-like
//! archives after per-dataset fine-tuning.

use aimts_baselines::foundation::FoundationConfig;
use aimts_baselines::{MomentLike, UnitsLike};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{bench_finetune_config, finetune_eval_aimts, pretrain_aimts_standard};
use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_data::Dataset;
use aimts_eval::ResultTable;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 3] = ["AimTS", "MOMENT-like", "UniTS-like"];

#[derive(Serialize)]
struct Payload {
    methods: Vec<String>,
    ucr_rows: Vec<(String, Vec<f64>)>,
    uea_rows: Vec<(String, Vec<f64>)>,
    ucr_avg_acc: Vec<f64>,
    uea_avg_acc: Vec<f64>,
    paper_ucr_avg_acc: Vec<f64>,
    paper_uea_avg_acc: Vec<f64>,
    elapsed_secs: f64,
}

fn bench_foundation_config() -> FoundationConfig {
    FoundationConfig {
        hidden: 16,
        repr_dim: 32,
        dilations: vec![1, 2, 4],
        pretrain_len: 64,
    }
}

fn main() {
    banner(
        "table4_foundation",
        "Paper Table IV",
        "AimTS vs foundation-model stand-ins (MOMENT-like, UniTS-like)",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let model = pretrain_aimts_standard(scale, 3407);
        let pool = monash_like_pool(scale.pool_per_source(), 0);

        let mut moment = MomentLike::new(bench_foundation_config(), 13);
        let mse = moment.pretrain(&pool, scale.pretrain_epochs(), 16, 5e-3, 13);
        eprintln!("  [moment-like pretrain] final masked MSE {mse:.4}");

        // UniTS-like pre-trains supervised on labeled sources disjoint
        // from the evaluation archives (different seed stream).
        let sources = ucr_like_archive(6, 999);
        let source_refs: Vec<&Dataset> = sources.iter().collect();
        let mut units = UnitsLike::new(bench_foundation_config(), 17);
        let ce = units.pretrain(&source_refs, scale.pretrain_epochs(), 8, 5e-3, 17);
        eprintln!("  [units-like pretrain] final CE {ce:.4}");

        let fcfg = bench_finetune_config(scale);
        let run = |title: &str, datasets: &[Dataset]| -> ResultTable {
            let mut table = ResultTable::new(title, &METHODS);
            for ds in datasets {
                eprintln!("  dataset: {}", ds.name);
                table.push_row(
                    ds.name.clone(),
                    vec![
                        finetune_eval_aimts(&model, ds, scale),
                        moment.fine_tune(ds, &fcfg).evaluate(&ds.test),
                        units.fine_tune(ds, &fcfg).evaluate(&ds.test),
                    ],
                );
            }
            table
        };
        let t_ucr = run("UCR-like archive", &ucr_like_archive(scale.n_ucr(), 42));
        let t_uea = run("UEA-like archive", &uea_like_archive(scale.n_uea(), 42));
        println!("{}", t_ucr.render());
        println!("{}", t_uea.render());
        println!("paper reports (128 UCR): AimTS 0.870 | MOMENT 0.743 | UniTS 0.646");
        println!("paper reports (30 UEA):  AimTS 0.780 | MOMENT 0.696 | UniTS 0.639");
        Payload {
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            ucr_avg_acc: t_ucr.avg_acc(),
            uea_avg_acc: t_uea.avg_acc(),
            ucr_rows: t_ucr.rows,
            uea_rows: t_uea.rows,
            paper_ucr_avg_acc: vec![0.870, 0.743, 0.646],
            paper_uea_avg_acc: vec![0.780, 0.696, 0.639],
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table4_foundation", &payload);
    println!("total: {elapsed:.1}s");
}
