//! Table V — few-shot learning on 6 downstream datasets with 5% / 15% /
//! 20% of each training split, comparing AimTS against the foundation
//! stand-ins (MOMENT-like, UniTS-like).

use aimts_baselines::foundation::FoundationConfig;
use aimts_baselines::{MomentLike, UnitsLike};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{bench_finetune_config, pretrain_aimts_standard};
use aimts_data::archives::{monash_like_pool, ucr_like_archive};
use aimts_data::special::fewshot_suite;
use aimts_data::{few_shot_subset, Dataset};
use aimts_eval::ResultTable;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 3] = ["AimTS", "MOMENT-like", "UniTS-like"];

#[derive(Serialize)]
struct Payload {
    ratios: Vec<f64>,
    methods: Vec<String>,
    /// One table per ratio: dataset rows × method columns.
    tables: Vec<Vec<(String, Vec<f64>)>>,
    avg_acc_per_ratio: Vec<Vec<f64>>,
    paper_avg_acc_per_ratio: Vec<Vec<f64>>,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "table5_fewshot",
        "Paper Table V",
        "few-shot fine-tuning at 5/15/20% of the training split",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let model = pretrain_aimts_standard(scale, 3407);
        let pool = monash_like_pool(scale.pool_per_source(), 0);
        let mut moment = MomentLike::new(
            FoundationConfig {
                hidden: 16,
                repr_dim: 32,
                dilations: vec![1, 2, 4],
                pretrain_len: 64,
            },
            13,
        );
        moment.pretrain(&pool, scale.pretrain_epochs(), 16, 5e-3, 13);
        let sources = ucr_like_archive(6, 999);
        let source_refs: Vec<&Dataset> = sources.iter().collect();
        let mut units = UnitsLike::new(
            FoundationConfig {
                hidden: 16,
                repr_dim: 32,
                dilations: vec![1, 2, 4],
                pretrain_len: 64,
            },
            17,
        );
        units.pretrain(&source_refs, scale.pretrain_epochs(), 8, 5e-3, 17);

        // Few-shot percentages: the suite's training splits are small, so
        // the subsets keep >= 1 sample/class by construction.
        let suite = fewshot_suite(7);
        let ratios = [0.05f64, 0.15, 0.20];
        let fcfg = bench_finetune_config(scale);
        let mut tables = Vec::new();
        let mut avg_accs = Vec::new();
        for &ratio in &ratios {
            let mut table =
                ResultTable::new(format!("few-shot ratio {:.0}%", ratio * 100.0), &METHODS);
            for ds in &suite {
                eprintln!("  ratio {ratio:.2} dataset {}", ds.name);
                let sub = few_shot_subset(&ds.train, ratio as f32, 3407);
                let few = Dataset {
                    name: ds.name.clone(),
                    domain: ds.domain.clone(),
                    n_classes: ds.n_classes,
                    train: sub,
                    test: ds.test.clone(),
                };
                table.push_row(
                    ds.name.clone(),
                    vec![
                        model.fine_tune(&few, &fcfg).evaluate(&few.test),
                        moment.fine_tune(&few, &fcfg).evaluate(&few.test),
                        units.fine_tune(&few, &fcfg).evaluate(&few.test),
                    ],
                );
            }
            println!("{}", table.render());
            avg_accs.push(table.avg_acc());
            tables.push(table.rows);
        }
        println!("paper reports Avg.ACC: 5% AimTS 0.673/MOMENT 0.550/UniTS 0.574 | 15% 0.754/0.661/0.618 | 20% 0.766/0.699/0.652");
        println!("shape check: AimTS leads at every ratio; all methods improve with more data.");
        Payload {
            ratios: ratios.to_vec(),
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            tables,
            avg_acc_per_ratio: avg_accs,
            paper_avg_acc_per_ratio: vec![
                vec![0.673, 0.550, 0.574],
                vec![0.754, 0.661, 0.618],
                vec![0.766, 0.699, 0.652],
            ],
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table5_fewshot", &payload);
    println!("total: {elapsed:.1}s");
}
