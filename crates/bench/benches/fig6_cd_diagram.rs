//! Fig. 6 — critical-difference diagrams (Nemenyi test, 95% confidence)
//! over the Table I accuracy matrices. Reads `bench_results/
//! table1_repr_learning.json` when present (run that bench first for the
//! full picture); otherwise regenerates a reduced matrix in-process.

use aimts_baselines::Method;
use aimts_bench::harness::{banner, record_results, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{baseline_case_by_case, finetune_eval_aimts, pretrain_aimts};
use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_eval::{render_cd_diagram, CdAnalysis};
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 5] = ["AimTS", "TS2Vec", "TS-TCC", "TNC", "T-Loss"];

#[derive(Serialize)]
struct Payload {
    methods: Vec<String>,
    ucr_avg_ranks: Vec<f64>,
    uea_avg_ranks: Vec<f64>,
    ucr_cd: f64,
    uea_cd: f64,
    ucr_friedman_p: f64,
    uea_friedman_p: f64,
}

fn matrix_from_json(v: &serde_json::Value, key: &str) -> Option<Vec<Vec<f64>>> {
    let rows = v.get(key)?.as_array()?;
    let mut out = Vec::new();
    for r in rows {
        let accs = r.as_array()?.get(1)?.as_array()?;
        out.push(accs.iter().filter_map(|x| x.as_f64()).collect());
    }
    (!out.is_empty()).then_some(out)
}

fn main() {
    banner(
        "fig6_cd_diagram",
        "Paper Fig. 6",
        "CD diagrams over the Table I matrices",
    );
    let scale = Scale::from_env();
    let path = aimts_bench::harness::results_dir().join("table1_repr_learning.json");
    let (ucr_m, uea_m) = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| {
            Some((
                matrix_from_json(&v, "ucr_rows")?,
                matrix_from_json(&v, "uea_rows")?,
            ))
        }) {
        Some(m) => {
            println!("using recorded Table I matrices from {}", path.display());
            m
        }
        None => {
            println!("no recorded Table I results; regenerating a reduced matrix");
            let pool = monash_like_pool(scale.pool_per_source(), 0);
            let model = pretrain_aimts(&pool, scale, 3407);
            let run = |suite: Vec<aimts_data::Dataset>| -> Vec<Vec<f64>> {
                suite
                    .iter()
                    .map(|ds| {
                        let mut row = vec![finetune_eval_aimts(&model, ds, scale)];
                        for m in [Method::Ts2Vec, Method::TsTcc, Method::Tnc, Method::TLoss] {
                            row.push(baseline_case_by_case(m, ds, scale, 100));
                        }
                        row
                    })
                    .collect()
            };
            (run(ucr_like_archive(4, 42)), run(uea_like_archive(3, 42)))
        }
    };

    let ucr = CdAnalysis::new(&METHODS, &ucr_m);
    let uea = CdAnalysis::new(&METHODS, &uea_m);
    println!("\n--- UCR-like archive ---\n{}", render_cd_diagram(&ucr));
    println!("--- UEA-like archive ---\n{}", render_cd_diagram(&uea));
    println!("paper Fig. 6: AimTS holds the best (lowest) average rank on both archives.");

    record_results(
        "fig6_cd_diagram",
        &Payload {
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            ucr_avg_ranks: ucr.avg_ranks.clone(),
            uea_avg_ranks: uea.avg_ranks.clone(),
            ucr_cd: ucr.critical_difference,
            uea_cd: uea.critical_difference,
            ucr_friedman_p: ucr.p_value,
            uea_friedman_p: uea.p_value,
        },
    );
}
