//! Fig. 9 — case study of semantic changes caused by data augmentation on
//! StarLightCurves-like data: a classifier trained on the raw training
//! split is tested on (a) the raw test set, (b) a slicing-augmented test
//! set, and (c) the *prototype* test set (each sample replaced by the mean
//! of its augmented views). The paper finds slicing drops accuracy while
//! prototypes restore it.

use aimts_augment::{default_bank, Augmentation};
use aimts_baselines::FcnClassifier;
use aimts_bench::harness::{banner, record_results, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_data::special::starlight_like;
use aimts_data::{Sample, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Payload {
    raw_acc: f64,
    sliced_acc: f64,
    prototype_acc: f64,
    paper: (f64, f64, f64),
}

/// Replace every sample by the element-wise mean of one view per bank
/// augmentation — the time-domain prototype of Fig. 9(c).
fn prototype_split(split: &Split, rng: &mut StdRng) -> Split {
    let bank = default_bank();
    Split::new(
        split
            .samples
            .iter()
            .map(|s| {
                let t = s.vars[0].len();
                let mut acc = vec![vec![0f32; t]; s.vars.len()];
                for aug in &bank {
                    let view = aug.apply_multivariate(&s.vars, rng);
                    for (a, v) in acc.iter_mut().zip(&view) {
                        for (x, y) in a.iter_mut().zip(v) {
                            *x += y / bank.len() as f32;
                        }
                    }
                }
                Sample::new(acc, s.label)
            })
            .collect(),
    )
}

fn augment_split(split: &Split, aug: &Augmentation, rng: &mut StdRng) -> Split {
    Split::new(
        split
            .samples
            .iter()
            .map(|s| Sample::new(aug.apply_multivariate(&s.vars, rng), s.label))
            .collect(),
    )
}

fn main() {
    banner(
        "fig9_semantic_case",
        "Paper Fig. 9",
        "slicing changes test-sample semantics; prototypes restore them (StarLightCurves-like)",
    );
    let scale = Scale::from_env();
    let ds = starlight_like(9);
    let mut clf = FcnClassifier::new(ds.n_vars(), 16, ds.n_classes, 0);
    clf.fit(&ds, scale.finetune_epochs(), 8, 1e-2, 0);

    let mut rng = StdRng::seed_from_u64(3407);
    let raw_acc = clf.evaluate(&ds.test);
    let sliced = augment_split(&ds.test, &Augmentation::Slicing { ratio: 0.5 }, &mut rng);
    let sliced_acc = clf.evaluate(&sliced);
    let proto = prototype_split(&ds.test, &mut rng);
    let prototype_acc = clf.evaluate(&proto);

    println!("(a) raw test set        accuracy {raw_acc:.3}   (paper 0.97)");
    println!("(b) sliced test set     accuracy {sliced_acc:.3}   (paper 0.88)");
    println!("(c) prototype test set  accuracy {prototype_acc:.3}   (paper 0.95)");
    println!("\nshape check: sliced < prototype <= raw (slicing shifts semantics; prototypes restore them).");
    record_results(
        "fig9_semantic_case",
        &Payload {
            raw_acc,
            sliced_acc,
            prototype_acc,
            paper: (0.97, 0.88, 0.95),
        },
    );
}
