//! Fig. 8(a)(b)(c) — scalability of fine-tuning memory and total time
//! with respect to data size, series length, and model parameters, on the
//! SleepEEG-like dataset. The paper reports linear scaling in data size
//! and length, and moderate growth in parameters.

use aimts::{AimTs, AimTsConfig, FineTuneConfig};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::{peak_bytes, reset_peak, CountingAllocator};
use aimts_bench::runners::bench_aimts_config;
use aimts_data::special::sleepeeg_like;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Point {
    x: f64,
    peak_mb: f64,
    secs: f64,
}

#[derive(Serialize)]
struct Payload {
    data_size: Vec<Point>,
    length: Vec<Point>,
    params: Vec<Point>,
    paper_note: String,
}

fn measure(model: &AimTs, ds: &aimts_data::Dataset, epochs: usize) -> (f64, f64) {
    reset_peak();
    let ((), secs) = time_it(|| {
        let fcfg = FineTuneConfig {
            epochs,
            batch_size: 8,
            ..Default::default()
        };
        let tuned = model.fine_tune(ds, &fcfg);
        let _ = tuned.evaluate(&ds.test);
    });
    (peak_bytes() as f64 / 1e6, secs)
}

fn main() {
    banner(
        "fig8_scalability",
        "Paper Fig. 8(a)(b)(c)",
        "fine-tuning memory/time vs data size, series length, parameter count (SleepEEG-like)",
    );
    let _ = Scale::from_env();
    let epochs = 3;
    let model = AimTs::new(bench_aimts_config(), 3407);

    // (a) data size, fixed length.
    let mut data_size = Vec::new();
    println!("-- (a) data size (length fixed at 256) --");
    for &per_class in &[8usize, 16, 32] {
        let ds = sleepeeg_like(256, per_class, 1);
        let (mb, secs) = measure(&model, &ds, epochs);
        let n = ds.train.len();
        println!("train {n:>4} samples: peak {mb:>8.1} MB  time {secs:>7.2}s");
        data_size.push(Point {
            x: n as f64,
            peak_mb: mb,
            secs,
        });
    }

    // (b) series length, fixed data size.
    let mut length = Vec::new();
    println!("-- (b) series length (120 train samples) --");
    for &len in &[128usize, 256, 512] {
        let ds = sleepeeg_like(len, 24, 2);
        let (mb, secs) = measure(&model, &ds, epochs);
        println!("length {len:>5}: peak {mb:>8.1} MB  time {secs:>7.2}s");
        length.push(Point {
            x: len as f64,
            peak_mb: mb,
            secs,
        });
    }

    // (c) model parameters, fixed data.
    let mut params = Vec::new();
    println!("-- (c) model parameters --");
    for &hidden in &[8usize, 16, 32] {
        let cfg = AimTsConfig {
            hidden,
            repr_dim: hidden * 2,
            ..bench_aimts_config()
        };
        let m = AimTs::new(cfg, 3407);
        let n_params = m.num_parameters();
        let ds = sleepeeg_like(256, 12, 3);
        let (mb, secs) = measure(&m, &ds, epochs);
        println!("params {n_params:>8}: peak {mb:>8.1} MB  time {secs:>7.2}s");
        params.push(Point {
            x: n_params as f64,
            peak_mb: mb,
            secs,
        });
    }

    // Shape check: ratio of consecutive times should approximate the ratio
    // of the swept factor (linearity).
    let lin = |pts: &[Point]| -> f64 {
        let t_ratio = pts[pts.len() - 1].secs / pts[0].secs.max(1e-9);
        let x_ratio = pts[pts.len() - 1].x / pts[0].x;
        t_ratio / x_ratio
    };
    println!(
        "\nlinearity (time-ratio / factor-ratio, 1.0 = perfectly linear): data {:.2}, length {:.2}, params {:.2}",
        lin(&data_size),
        lin(&length),
        lin(&params)
    );
    println!("paper Fig. 8a-c: linear growth in data size and length; moderate growth in params.");
    record_results(
        "fig8_scalability",
        &Payload {
            data_size,
            length,
            params,
            paper_note: "paper: linear in data size & length, moderate in params".into(),
        },
    );
}
