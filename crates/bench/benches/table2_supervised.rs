//! Table II — comparison with supervised state-of-the-art methods in the
//! case-by-case paradigm on 10 named UEA-like datasets.
//!
//! Columns: AimTS (multi-source pre-trained + fine-tuned) vs supervised
//! FCN (stand-in for the TimesNet/OS-CNN class), ROCKET, and 1-NN with
//! ED / DTW (classical references). Paper Table II's remaining columns are
//! other published numbers.

use aimts_baselines::{FcnClassifier, Metric, OneNn, RocketClassifier};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{finetune_eval_aimts, pretrain_aimts_standard};
use aimts_data::archives::table2_uea_datasets;
use aimts_eval::ResultTable;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 5] = ["AimTS", "FCN", "Rocket", "1NN-ED", "1NN-DTW"];

#[derive(Serialize)]
struct Payload {
    methods: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    avg_acc: Vec<f64>,
    avg_rank: Vec<f64>,
    paper_note: String,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "table2_supervised",
        "Paper Table II",
        "AimTS vs supervised case-by-case methods on 10 UEA-like datasets",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let model = pretrain_aimts_standard(scale, 3407);

        let datasets = table2_uea_datasets(9);

        let mut table = ResultTable::new("10 UEA-like datasets", &METHODS);
        for (i, ds) in datasets.iter().enumerate() {
            eprintln!("  dataset {}/{}: {}", i + 1, datasets.len(), ds.name);
            let aimts_acc = finetune_eval_aimts(&model, ds, scale);
            let mut fcn = FcnClassifier::new(ds.n_vars(), 16, ds.n_classes, 7);
            fcn.fit(ds, scale.finetune_epochs(), 8, 1e-2, 7);
            let fcn_acc = fcn.evaluate(&ds.test);
            let mut rocket = RocketClassifier::new(scale.rocket_kernels(), ds.series_len(), 7);
            rocket.fit(ds);
            let rocket_acc = rocket.evaluate(&ds.test);
            let ed = OneNn::fit(ds, Metric::Euclidean).evaluate(&ds.test);
            let dtw = OneNn::fit(ds, Metric::Dtw { band: 0.1 }).evaluate(&ds.test);
            table.push_row(
                ds.name.clone(),
                vec![aimts_acc, fcn_acc, rocket_acc, ed, dtw],
            );
        }
        println!("{}", table.render());
        println!("paper reports Avg.ACC: AimTS 0.783 | TimesNet 0.736 | Rocket 0.720 (AimTS best Avg.ACC and Avg.Rank)");
        Payload {
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            avg_acc: table.avg_acc(),
            avg_rank: table.avg_rank(),
            rows: table.rows,
            paper_note: "paper: AimTS 0.783 leads; supervised deep ~0.73; Rocket 0.72".into(),
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table2_supervised", &payload);
    println!("total: {elapsed:.1}s");
}
