//! Table III — comparison with the single-source generalization paradigm.
//!
//! Baselines pre-train on a SleepEEG-like corpus and transfer to four
//! divergent target domains (Epilepsy / FD-B / Gesture / EMG equivalents);
//! AimTS pre-trains on the multi-source Monash-like pool. The paper's
//! claim: single-source transfer degrades across large domain gaps while
//! multi-source pre-training does not.

use aimts_baselines::{ContrastiveBaseline, Method, TfcBaseline};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{
    bench_baseline_config, bench_finetune_config, finetune_eval_aimts, pretrain_aimts_standard,
};
use aimts_data::special::{sleepeeg_like, transfer_suite};
use aimts_eval::ResultTable;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METHODS: [&str; 7] = [
    "AimTS", "TS2Vec", "TS-TCC", "TNC", "T-Loss", "SoftCLT", "TF-C",
];

#[derive(Serialize)]
struct Payload {
    methods: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    avg_acc: Vec<f64>,
    paper_avg_acc_note: String,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "table3_single_source",
        "Paper Table III",
        "multi-source AimTS vs single-source(SleepEEG)-pre-trained baselines on 4 transfer targets",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let model = pretrain_aimts_standard(scale, 3407);

        // Single-source corpus for the baselines.
        let sleep = sleepeeg_like(128, 12, 5);
        let sleep_pool = sleep.unlabeled_train();
        let mut baselines: Vec<ContrastiveBaseline> = [
            Method::Ts2Vec,
            Method::TsTcc,
            Method::Tnc,
            Method::TLoss,
            Method::SoftClt,
        ]
        .into_iter()
        .map(|m| {
            let mut b = ContrastiveBaseline::new(m, bench_baseline_config(), 11);
            let loss = b.pretrain(&sleep_pool, scale.pretrain_epochs(), 8, 5e-3, 11);
            eprintln!("  [{} pretrain on SleepEEG(sim)] loss {loss:.4}", m.name());
            b
        })
        .collect();

        // TF-C pre-trains on the same single-source corpus.
        let mut tfc = TfcBaseline::new(bench_baseline_config(), 11);
        let tfc_loss = tfc.pretrain(&sleep_pool, scale.pretrain_epochs(), 8, 5e-3, 11);
        eprintln!("  [TF-C pretrain on SleepEEG(sim)] loss {tfc_loss:.4}");

        let targets = transfer_suite(21);
        let fcfg = bench_finetune_config(scale);
        let mut table = ResultTable::new("single-source generalization targets", &METHODS);
        for ds in &targets {
            eprintln!("  target: {}", ds.name);
            let mut row = vec![finetune_eval_aimts(&model, ds, scale)];
            for b in &mut baselines {
                row.push(b.fine_tune(ds, &fcfg).evaluate(&ds.test));
            }
            row.push(
                tfc.fine_tune(ds, fcfg.epochs, fcfg.lr, 11)
                    .evaluate(&ds.test),
            );
            table.push_row(ds.name.clone(), row);
        }
        println!("{}", table.render());
        println!("paper reports Avg.ACC: AimTS 0.944 | SoftCLT 0.931 | TF-C 0.806 | TS2Vec 0.774 | TS-TCC 0.746");
        Payload {
            methods: METHODS.iter().map(|s| s.to_string()).collect(),
            avg_acc: table.avg_acc(),
            rows: table.rows,
            paper_avg_acc_note: "paper Avg.ACC: AimTS 0.944, TS2Vec 0.774, TS-TCC 0.746".into(),
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table3_single_source", &payload);
    println!("total: {elapsed:.1}s");
}
