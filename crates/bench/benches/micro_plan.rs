//! Compiled-plan replay vs eager graph execution: the same training step
//! (encoder forward + InfoNCE-style loss + full backward) timed both ways.
//!
//! Two measurements:
//!
//! * **Graph step** — a compact projection-head-style step (three Linear
//!   layers → `l2_normalize` → similarity logits `/τ` → `cross_entropy_t`)
//!   then backward into every parameter. The compiled side replays the
//!   traced plan (`CompiledPlan::run` + `backward`), dispatching the
//!   matmul→bias, matmul→scale, and l2_normalize chains onto fused
//!   kernels; the eager side rebuilds the autograd graph each iteration.
//!   Shapes are deliberately small: the plan removes *per-step fixed
//!   costs* (graph construction, autograd bookkeeping, backward
//!   scheduling, broadcast materialization in the fused chains), so the
//!   micro workload keeps kernel arithmetic from drowning out the
//!   overhead being measured. This is the gated `speedup_vs_eager`.
//! * **End-to-end micro-batch** — `AimTs::microbatch_gradient_ex` with
//!   `Executor::Eager` vs `Executor::Compiled`. Augmentation and image
//!   rendering are identical on both sides, so this shows how much of a
//!   real pre-training step the graph fraction is.
//!
//! Steady-state allocation discipline is asserted, not just reported: the
//! arena miss counter must not move during the timed compiled loop — every
//! replay buffer comes from the pool after warmup.
//!
//! Set `AIMTS_PLAN_GATE=<floor>` to turn the graph-step speedup into a
//! hard failure (exit 1) below the floor.

use aimts::{AimTs, Executor};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::runners::bench_aimts_config;
use aimts_data::archives::monash_like_pool;
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::MultiSeries;
use aimts_nn::{Linear, Module, ParamLayout};
use aimts_tensor::{arena, plan, Tensor};
use serde::Serialize;

/// Rows per graph-step batch.
const ROWS: usize = 6;
/// Feature width of the graph-step projection head.
const DIM: usize = 16;
/// Inverse temperature of the bench's InfoNCE-style logits.
const SCALE: f32 = 10.0;

#[derive(Serialize)]
struct ArenaWindow {
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
}

impl ArenaWindow {
    fn delta(before: arena::ArenaStats, after: arena::ArenaStats) -> Self {
        ArenaWindow {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            recycled: after.recycled - before.recycled,
            dropped: after.dropped - before.dropped,
        }
    }
}

#[derive(Serialize)]
struct StepPoint {
    iters: usize,
    eager_secs: f64,
    compiled_secs: f64,
    speedup_vs_eager: f64,
    /// Arena counter movement during the timed compiled loop; `misses`
    /// must be 0 (zero steady-state allocations).
    compiled_arena: ArenaWindow,
    /// Same window over the timed eager loop, for contrast.
    eager_arena: ArenaWindow,
}

#[derive(Serialize)]
struct MicrobatchPoint {
    iters: usize,
    eager_secs: f64,
    compiled_secs: f64,
    speedup_vs_eager: f64,
}

#[derive(Serialize)]
struct Gate {
    floor: Option<f64>,
    speedup_vs_eager: f64,
    enforced: bool,
    passed: Option<bool>,
}

#[derive(Serialize)]
struct Payload {
    step: StepPoint,
    microbatch: MicrobatchPoint,
    gate: Gate,
    note: String,
}

/// The bench's projection head: three biased Linear layers with relu.
struct Head {
    l1: Linear,
    l2: Linear,
    l3: Linear,
}

impl Head {
    fn new() -> Self {
        Head {
            l1: Linear::new(DIM, DIM, true, 1),
            l2: Linear::new(DIM, DIM, true, 2),
            l3: Linear::new(DIM, DIM, true, 3),
        }
    }

    fn layout(&self) -> ParamLayout {
        let mut named = Vec::new();
        self.l1.named_parameters("l1", &mut named);
        self.l2.named_parameters("l2", &mut named);
        self.l3.named_parameters("l3", &mut named);
        ParamLayout::from_params(named.into_iter().map(|(_, t)| t).collect())
    }
}

/// One eager training step: project, unit-normalize, contrast the batch
/// against itself at a fixed inverse temperature, push toward the
/// identity assignment.
fn step_loss(head: &Head, x: &Tensor, targets: &Tensor) -> Tensor {
    let h = head.l1.forward(x).relu();
    let h = head.l2.forward(&h).relu();
    let z = head.l3.forward(&h).l2_normalize(1);
    let logits = z.matmul(&z.transpose(0, 1)).mul_scalar(SCALE);
    logits.cross_entropy_t(targets)
}

/// Graph-step comparison: eager rebuild-every-iteration vs compiled replay
/// of the identical step, same weights, same inputs.
fn bench_graph_step(iters: usize) -> StepPoint {
    let head = Head::new();
    let layout = head.layout();
    let x = Tensor::randn(&[ROWS, DIM], 11);
    let targets = Tensor::from_vec((0..ROWS).map(|i| i as f32).collect(), &[ROWS]);

    let _arena = arena::enable();

    // Trace once (the trace itself is an eager step), then warm both paths
    // untimed so the arena pool reaches steady state before timing.
    let compiled = plan::trace(&[x.clone(), targets.clone()], 1, || {
        vec![step_loss(&head, &x, &targets)]
    })
    .expect("bench step must be traceable");
    for _ in 0..5 {
        layout.zero_grad();
        compiled.run().expect("warm replay failed");
        compiled.backward();

        layout.zero_grad();
        step_loss(&head, &x, &targets).backward();
    }

    let eager_before = arena::stats();
    let (eager_loss, eager_secs) = time_it(|| {
        let mut last = 0.0;
        for _ in 0..iters {
            layout.zero_grad();
            let loss = step_loss(&head, &x, &targets);
            loss.backward();
            last = loss.item();
        }
        last
    });
    let eager_window = ArenaWindow::delta(eager_before, arena::stats());

    let compiled_before = arena::stats();
    let (compiled_loss, compiled_secs) = time_it(|| {
        let mut last = 0.0;
        for _ in 0..iters {
            layout.zero_grad();
            compiled.run().expect("timed replay failed");
            compiled.backward();
            last = compiled.output(0).item();
        }
        last
    });
    let compiled_window = ArenaWindow::delta(compiled_before, arena::stats());

    assert_eq!(
        eager_loss.to_bits(),
        compiled_loss.to_bits(),
        "compiled replay must be bitwise identical to eager"
    );
    assert_eq!(
        compiled_window.misses, 0,
        "compiled replay allocated outside the arena pool in steady state"
    );

    StepPoint {
        iters,
        eager_secs,
        compiled_secs,
        speedup_vs_eager: eager_secs / compiled_secs,
        compiled_arena: compiled_window,
        eager_arena: eager_window,
    }
}

/// End-to-end comparison: the full pre-training micro-batch (augmentation,
/// rendering, graph, backward, flat gradient) under each executor.
fn bench_microbatch(iters: usize) -> MicrobatchPoint {
    let cfg = bench_aimts_config();
    let pretrain_len = cfg.pretrain_len;
    let model = AimTs::new(cfg, 3407);
    let pool = monash_like_pool(2, 0);
    let prepared: Vec<MultiSeries> = pool
        .iter()
        .filter(|s| s.len() == 1)
        .take(4)
        .map(|s| {
            let mut vars = resample_sample(s, pretrain_len);
            z_normalize_sample(&mut vars);
            vars
        })
        .collect();
    assert!(prepared.len() == 4, "bench pool too small");
    let samples: Vec<&MultiSeries> = prepared.iter().collect();

    let _arena = arena::enable();
    let time_executor = |executor: Executor| {
        for _ in 0..2 {
            let g = model.microbatch_gradient_ex(&samples, 7, executor, 1);
            arena::recycle(g.gradient);
        }
        let ((), secs) = time_it(|| {
            for _ in 0..iters {
                let g = model.microbatch_gradient_ex(&samples, 7, executor, 1);
                arena::recycle(g.gradient);
            }
        });
        secs
    };
    let eager_secs = time_executor(Executor::Eager);
    let compiled_secs = time_executor(Executor::Compiled);
    MicrobatchPoint {
        iters,
        eager_secs,
        compiled_secs,
        speedup_vs_eager: eager_secs / compiled_secs,
    }
}

fn main() {
    banner(
        "micro_plan",
        "trace-and-compile executor",
        "compiled plan replay vs eager graph execution, same step, same weights",
    );
    let (step_iters, micro_iters) = match Scale::from_env() {
        Scale::Quick => (3000, 20),
        Scale::Full => (15000, 60),
    };

    let step = bench_graph_step(step_iters);
    println!(
        "graph step ({} iters): eager {:.3}s, compiled {:.3}s — speedup {:.2}x",
        step.iters, step.eager_secs, step.compiled_secs, step.speedup_vs_eager
    );
    println!(
        "  compiled arena window: {} hits / {} misses / {} recycled",
        step.compiled_arena.hits, step.compiled_arena.misses, step.compiled_arena.recycled
    );

    let microbatch = bench_microbatch(micro_iters);
    println!(
        "end-to-end micro-batch ({} iters): eager {:.3}s, compiled {:.3}s — speedup {:.2}x",
        microbatch.iters,
        microbatch.eager_secs,
        microbatch.compiled_secs,
        microbatch.speedup_vs_eager
    );

    let floor: Option<f64> = std::env::var("AIMTS_PLAN_GATE")
        .ok()
        .and_then(|v| v.trim().parse().ok());
    let enforced = floor.is_some();
    let passed = floor.map(|f| step.speedup_vs_eager >= f);
    if let (Some(f), Some(ok)) = (floor, passed) {
        println!(
            "plan gate: graph-step speedup {:.2}x vs floor {f:.2}x — {}",
            step.speedup_vs_eager,
            if ok { "PASS" } else { "FAIL" }
        );
    }
    let gate_failed = passed == Some(false);
    let speedup = step.speedup_vs_eager;
    record_results(
        "micro_plan",
        &Payload {
            step,
            microbatch,
            gate: Gate {
                floor,
                speedup_vs_eager: speedup,
                enforced,
                passed,
            },
            note: "graph step = 3-layer projection head + l2_normalize + \
                   InfoNCE-style loss + full backward on fixed small shapes \
                   after untimed warmup (per-step overhead is what the plan \
                   removes, so the micro workload keeps kernel arithmetic \
                   small); compiled replay is asserted bitwise equal to eager \
                   and to take zero arena misses in steady state. The \
                   end-to-end micro-batch includes augmentation and image \
                   rendering, which run identically under both executors"
                .into(),
        },
    );
    if gate_failed {
        std::process::exit(1);
    }
}
