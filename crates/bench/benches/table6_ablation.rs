//! Table VI — ablation study: pre-train with individual loss components
//! and compare downstream UCR-like accuracy.
//!
//! Rows match the paper: inter-prototype only; full prototype-based
//! (inter + intra); naive series-image only; full series-image (naive +
//! geodesic mixup); full AimTS.

use aimts::config::Ablation;
use aimts::AimTs;
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{bench_aimts_config, bench_finetune_config, bench_pretrain_config};
use aimts_data::archives::{monash_like_pool, ucr_like_archive};
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Payload {
    variants: Vec<String>,
    avg_acc: Vec<f64>,
    paper_avg_acc: Vec<f64>,
    per_dataset: Vec<Vec<f64>>,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "table6_ablation",
        "Paper Table VI",
        "loss-component ablations, pre-train on Monash-like, evaluate on UCR-like",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let variants: Vec<(&str, Ablation, f64)> = vec![
            ("inter-prototype only", Ablation::inter_only(), 0.851),
            (
                "prototype-based (inter+intra)",
                Ablation::proto_only(),
                0.858,
            ),
            ("naive series-image only", Ablation::si_naive_only(), 0.858),
            ("series-image (naive+mixup)", Ablation::si_only(), 0.865),
            ("full AimTS", Ablation::default(), 0.870),
        ];
        let pool = monash_like_pool(scale.pool_per_source(), 0);
        let datasets = ucr_like_archive(scale.n_ucr(), 42);
        let fcfg = bench_finetune_config(scale);
        // Ablation variants cannot share a cache (each pre-trains its own
        // losses); use a reduced epoch budget to keep the sweep tractable.
        let mut pcfg = bench_pretrain_config(scale);
        pcfg.epochs = (pcfg.epochs / 2).max(1);

        let mut names = Vec::new();
        let mut avg = Vec::new();
        let mut paper = Vec::new();
        let mut per_ds = Vec::new();
        for (name, ablation, paper_acc) in variants {
            eprintln!("  variant: {name}");
            let cfg = aimts::AimTsConfig {
                ablation,
                ..bench_aimts_config()
            };
            let mut model = AimTs::new(cfg, 3407);
            model
                .pretrain(&pool, &pcfg)
                .expect("bench pre-training failed");
            let accs: Vec<f64> = datasets
                .iter()
                .map(|ds| model.fine_tune(ds, &fcfg).evaluate(&ds.test))
                .collect();
            let mean = accs.iter().sum::<f64>() / accs.len() as f64;
            println!("{name:<34} Avg.ACC {mean:.3}   (paper: {paper_acc:.3})");
            names.push(name.to_string());
            avg.push(mean);
            paper.push(paper_acc);
            per_ds.push(accs);
        }
        println!(
            "\nshape check (paper): full AimTS >= series-image >= prototype-based >= inter-only."
        );
        Payload {
            variants: names,
            avg_acc: avg,
            paper_avg_acc: paper,
            per_dataset: per_ds,
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table6_ablation", &payload);
    println!("total: {elapsed:.1}s");
}
