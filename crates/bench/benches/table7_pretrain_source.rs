//! Table VII — effect of the pre-training corpus: Monash-like vs the
//! UCR-like training pool vs the UEA-like training pool, each evaluated
//! on both downstream archives.

use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::memprof::CountingAllocator;
use aimts_bench::runners::{bench_finetune_config, finetune_eval_aimts, pretrain_aimts};
use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_data::{Dataset, MultiSeries};
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Serialize)]
struct Payload {
    pools: Vec<String>,
    ucr_avg_acc: Vec<f64>,
    uea_avg_acc: Vec<f64>,
    paper_ucr: Vec<f64>,
    paper_uea: Vec<f64>,
    elapsed_secs: f64,
}

fn main() {
    banner(
        "table7_pretrain_source",
        "Paper Table VII",
        "pre-training corpus comparison: Monash-like vs UCR-train vs UEA-train pools",
    );
    let scale = Scale::from_env();
    let (payload, elapsed) = time_it(|| {
        let ucr = ucr_like_archive(scale.n_ucr(), 42);
        let uea = uea_like_archive(scale.n_uea(), 42);

        // Pool 1: out-of-domain Monash-like. Pools 2/3: the *downstream*
        // archives' own unlabeled training data (the paper's in-domain
        // setting that "reaffirms Paradigm 3").
        let monash = monash_like_pool(scale.pool_per_source(), 0);
        let ucr_pool: Vec<MultiSeries> = ucr.iter().flat_map(|d| d.unlabeled_train()).collect();
        let uea_pool: Vec<MultiSeries> = uea.iter().flat_map(|d| d.unlabeled_train()).collect();

        let eval_suite = |model: &aimts::AimTs, suite: &[Dataset]| -> f64 {
            let accs: Vec<f64> = suite
                .iter()
                .map(|ds| finetune_eval_aimts(model, ds, scale))
                .collect();
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        let _ = bench_finetune_config(scale);

        let mut pools = Vec::new();
        let mut ucr_acc = Vec::new();
        let mut uea_acc = Vec::new();
        for (name, pool) in [
            ("Monash-like", &monash),
            ("UCR-train", &ucr_pool),
            ("UEA-train", &uea_pool),
        ] {
            eprintln!("  pre-training on {name} ({} samples)", pool.len());
            let model = pretrain_aimts(pool, scale, 3407);
            let a_ucr = eval_suite(&model, &ucr);
            let a_uea = eval_suite(&model, &uea);
            println!(
                "pretrain={name:<12} UCR-like Avg.ACC {a_ucr:.3}   UEA-like Avg.ACC {a_uea:.3}"
            );
            pools.push(name.to_string());
            ucr_acc.push(a_ucr);
            uea_acc.push(a_uea);
        }
        println!("\npaper reports: UCR row 0.870/0.871/0.858 — in-domain pools help their own archive slightly;");
        println!("all three pools produce generalizable representations (within a few points).");
        Payload {
            pools,
            ucr_avg_acc: ucr_acc,
            uea_avg_acc: uea_acc,
            paper_ucr: vec![0.870, 0.871, 0.858],
            paper_uea: vec![0.780, 0.774, 0.782],
            elapsed_secs: 0.0,
        }
    });
    let payload = Payload {
        elapsed_secs: elapsed,
        ..payload
    };
    record_results("table7_pretrain_source", &payload);
    println!("total: {elapsed:.1}s");
}
