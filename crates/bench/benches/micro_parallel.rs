//! Data-parallel pre-training throughput: the same fixed workload at 1, 2,
//! 4, and 8 workers, reporting optimizer-steps-per-second and speedup over
//! the serial path. The target for the replica-per-worker scheme is >= 2x
//! throughput at 4 workers on a 4+-core machine.
//!
//! Besides throughput, the bench verifies the two correctness properties
//! the parallel path promises:
//!
//! * **Gradient agreement** — with identical weights, a replica computing a
//!   micro-batch on a worker thread must match the master computing it
//!   serially to within 1e-5 (float non-associativity across the SIMD
//!   all-reduce is the only permitted difference).
//! * **Bounded loss divergence** — `final_loss` *does* differ across worker
//!   counts, and that is expected, not a bug: the serial path takes one
//!   Adam step per micro-batch, while W workers take one step per round of
//!   W averaged micro-batches (W× fewer, larger steps) and draw different
//!   per-micro-batch augmentation streams. The optimizer trajectories
//!   therefore diverge (e.g. ~2.3 serial vs ~2.8 at 2 workers after 2
//!   epochs) while both still converge. The bench asserts the gap stays
//!   within a loose tolerance instead of pretending it is zero.
//!
//! Set `AIMTS_BENCH_GATE=<floor>` to turn the 4-worker speedup into a hard
//! failure (exit 1) when the machine actually has >= 4 cores; machines with
//! fewer cores record the gate as skipped, since the speedup is physically
//! unobservable there.

use aimts::{AimTs, PretrainConfig};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::runners::bench_aimts_config;
use aimts_data::archives::monash_like_pool;
use aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_data::MultiSeries;
use serde::Serialize;

/// Permitted replica-vs-serial gradient disagreement (same weights).
const GRAD_TOLERANCE: f32 = 1e-5;
/// Permitted |final_loss(workers) - final_loss(serial)| — a loose bound on
/// the expected optimizer-trajectory divergence documented above.
const LOSS_TOLERANCE: f32 = 1.0;

#[derive(Serialize)]
struct Point {
    workers: usize,
    secs: f64,
    microbatches_per_sec: f64,
    speedup_vs_serial: f64,
    final_loss: f32,
    /// |final_loss - serial final_loss|; expected nonzero (see module doc).
    loss_delta_vs_serial: f32,
}

#[derive(Serialize)]
struct GradAgreement {
    workers: usize,
    /// Worst absolute element difference between a worker-computed and the
    /// serially-computed all-reduced gradient, same weights.
    worst_abs_err: f32,
    tolerance: f32,
}

#[derive(Serialize)]
struct Gate {
    floor: Option<f64>,
    speedup_at_4: f64,
    cores: usize,
    /// False when the gate was requested but skipped for lack of cores.
    enforced: bool,
    passed: Option<bool>,
}

#[derive(Serialize)]
struct Payload {
    cores: usize,
    points: Vec<Point>,
    grad_agreement: GradAgreement,
    gate: Gate,
    note: String,
}

/// Mirror of `AimTs::prepare`: resample to the pre-training length and
/// z-normalize, so micro-batches built here match what `pretrain` feeds
/// the model.
fn prepare_pool(pool: &[MultiSeries], len: usize) -> Vec<MultiSeries> {
    pool.iter()
        .map(|s| {
            let mut vars = resample_sample(s, len);
            z_normalize_sample(&mut vars);
            vars
        })
        .collect()
}

/// Same-weights gradient agreement between the serial master and threaded
/// replicas, over `workers` micro-batches of equal variable count.
fn gradient_agreement(pool: &[MultiSeries], workers: usize) -> GradAgreement {
    let cfg = bench_aimts_config();
    let model = AimTs::new(cfg.clone(), 3407);
    let prepared = prepare_pool(pool, cfg.pretrain_len);
    // Micro-batches must share a variable count: take the most common M.
    let mut by_m: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, s) in prepared.iter().enumerate() {
        by_m.entry(s.len()).or_default().push(i);
    }
    let idxs = by_m
        .values()
        .max_by_key(|g| g.len())
        .expect("non-empty pool");
    assert!(
        idxs.len() >= 2 * workers,
        "need {workers} pairs of equal-M samples, have {}",
        idxs.len()
    );
    let mbs: Vec<(u64, Vec<usize>)> = idxs
        .chunks(2)
        .take(workers)
        .enumerate()
        .map(|(i, pair)| {
            (
                aimts::parallel::microbatch_seed(3407, 0, i as u64),
                pair.to_vec(),
            )
        })
        .collect();
    let serial: Vec<Vec<f32>> = mbs
        .iter()
        .map(|(seed, idx)| {
            let s: Vec<&MultiSeries> = idx.iter().map(|&i| &prepared[i]).collect();
            model.microbatch_gradient(&s, *seed).gradient
        })
        .collect();
    let expect = aimts::parallel::all_reduce_mean(&serial);
    let replicas: Vec<AimTs> = (0..workers).map(|_| model.replicate()).collect();
    let master = model.flat_parameters();
    let results = aimts::parallel::parallel_map(&mbs, workers, |slot, (seed, idx)| {
        let replica = &replicas[slot];
        replica.load_flat(&master);
        let s: Vec<&MultiSeries> = idx.iter().map(|&i| &prepared[i]).collect();
        replica.microbatch_gradient(&s, *seed).gradient
    });
    let got = aimts::parallel::all_reduce_mean(&results);
    let worst = expect
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);
    GradAgreement {
        workers,
        worst_abs_err: worst,
        tolerance: GRAD_TOLERANCE,
    }
}

fn main() {
    banner(
        "micro_parallel",
        "data-parallel pre-training",
        "pretrain throughput vs worker count (replica-per-worker, gradient all-reduce)",
    );
    let scale = Scale::from_env();
    let per_source = match scale {
        Scale::Quick => 8,
        Scale::Full => 24,
    };
    let epochs = match scale {
        Scale::Quick => 2,
        Scale::Full => 4,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = monash_like_pool(per_source, 0);
    println!(
        "pool: {} samples, {epochs} epoch(s), batch 4, cores available: {cores}\n",
        pool.len(),
    );

    println!("gradient agreement (same weights, 4 replicas vs serial):");
    let agreement = gradient_agreement(&pool, 4);
    println!(
        "  worst |err| = {:.3e} (tolerance {:.0e})\n",
        agreement.worst_abs_err, agreement.tolerance
    );
    assert!(
        agreement.worst_abs_err <= agreement.tolerance,
        "replica gradients diverged from serial: {} > {}",
        agreement.worst_abs_err,
        agreement.tolerance
    );

    let mut points = Vec::new();
    let mut serial_secs = f64::NAN;
    let mut serial_loss = f32::NAN;
    for workers in [1usize, 2, 4, 8] {
        let pcfg = PretrainConfig {
            epochs,
            batch_size: 4,
            workers,
            ..Default::default()
        };
        // Untimed warmup: spawns the worker pool once, sizes every
        // per-thread buffer arena, faults in the data, and trains the
        // allocator caches, so the timed run measures the steady state.
        let warm_cfg = PretrainConfig {
            epochs: 1,
            ..pcfg.clone()
        };
        AimTs::new(bench_aimts_config(), 3407)
            .pretrain(&pool, &warm_cfg)
            .expect("bench warmup failed");

        let mut model = AimTs::new(bench_aimts_config(), 3407);
        let (report, secs) = time_it(|| {
            model
                .pretrain(&pool, &pcfg)
                .expect("bench pre-training failed")
        });
        if workers == 1 {
            serial_secs = secs;
            serial_loss = report.final_loss;
        }
        let loss_delta = (report.final_loss - serial_loss).abs();
        assert!(
            loss_delta <= LOSS_TOLERANCE,
            "worker-count loss divergence exceeded the expected band: \
             |{} - {serial_loss}| > {LOSS_TOLERANCE} at {workers} workers",
            report.final_loss
        );
        // Micro-batches processed, not optimizer steps: the parallel path
        // takes one step per round of `workers` micro-batches, so steps/sec
        // alone would understate the work done.
        let micro = report.steps * report.workers;
        let point = Point {
            workers: report.workers,
            secs,
            microbatches_per_sec: micro as f64 / secs,
            speedup_vs_serial: serial_secs / secs,
            final_loss: report.final_loss,
            loss_delta_vs_serial: loss_delta,
        };
        println!(
            "workers={:<2} {:6.2}s  {:6.2} micro-batches/s  speedup {:4.2}x  final loss {:.4} (Δ vs serial {:.4})",
            point.workers,
            point.secs,
            point.microbatches_per_sec,
            point.speedup_vs_serial,
            point.final_loss,
            point.loss_delta_vs_serial,
        );
        points.push(point);
    }

    let speedup_at_4 = points
        .iter()
        .find(|p| p.workers == 4)
        .map_or(f64::NAN, |p| p.speedup_vs_serial);
    let floor: Option<f64> = std::env::var("AIMTS_BENCH_GATE")
        .ok()
        .and_then(|v| v.trim().parse().ok());
    let enforced = floor.is_some() && cores >= 4;
    let passed = if enforced {
        // aimts-lint: allow(A001, `enforced` implies the floor parsed)
        Some(speedup_at_4 >= floor.expect("enforced implies floor"))
    } else {
        None
    };
    let gate = Gate {
        floor,
        speedup_at_4,
        cores,
        enforced,
        passed,
    };
    match (&gate.floor, gate.enforced, gate.passed) {
        (Some(f), true, Some(ok)) => println!(
            "\nbench gate: 4-worker speedup {speedup_at_4:.2}x vs floor {f:.2}x — {}",
            if ok { "PASS" } else { "FAIL" }
        ),
        (Some(f), false, _) => {
            println!("\nbench gate: skipped (floor {f:.2}x needs >= 4 cores, have {cores})")
        }
        _ => {}
    }

    let gate_failed = gate.passed == Some(false);
    record_results(
        "micro_parallel",
        &Payload {
            cores,
            points,
            grad_agreement: agreement,
            gate,
            note: "speedup is wall-clock serial/parallel on the same pool after an \
                   untimed warmup run; worker counts above the core count cannot \
                   help; final_loss varies with worker count by design (one Adam \
                   step per round of W averaged micro-batches, distinct \
                   augmentation streams), bounded by loss_delta_vs_serial"
                .into(),
        },
    );

    if gate_failed {
        std::process::exit(1);
    }
}
