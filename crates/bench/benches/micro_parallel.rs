//! Data-parallel pre-training throughput: the same fixed workload at 1, 2,
//! 4, and 8 workers, reporting optimizer-steps-per-second and speedup over
//! the serial path. The target for the replica-per-worker scheme is >= 2x
//! throughput at 4 workers on a 4+-core machine.

use aimts::{AimTs, PretrainConfig};
use aimts_bench::harness::{banner, record_results, time_it, Scale};
use aimts_bench::runners::bench_aimts_config;
use aimts_data::archives::monash_like_pool;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    workers: usize,
    secs: f64,
    microbatches_per_sec: f64,
    speedup_vs_serial: f64,
    final_loss: f32,
}

#[derive(Serialize)]
struct Payload {
    points: Vec<Point>,
    note: String,
}

fn main() {
    banner(
        "micro_parallel",
        "data-parallel pre-training",
        "pretrain throughput vs worker count (replica-per-worker, gradient all-reduce)",
    );
    let scale = Scale::from_env();
    let per_source = match scale {
        Scale::Quick => 8,
        Scale::Full => 24,
    };
    let epochs = match scale {
        Scale::Quick => 2,
        Scale::Full => 4,
    };
    let pool = monash_like_pool(per_source, 0);
    println!(
        "pool: {} samples, {epochs} epoch(s), batch 4, cores available: {}\n",
        pool.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut points = Vec::new();
    let mut serial_secs = f64::NAN;
    for workers in [1usize, 2, 4, 8] {
        let mut model = AimTs::new(bench_aimts_config(), 3407);
        let pcfg = PretrainConfig {
            epochs,
            batch_size: 4,
            workers,
            ..Default::default()
        };
        let (report, secs) = time_it(|| {
            model
                .pretrain(&pool, &pcfg)
                .expect("bench pre-training failed")
        });
        if workers == 1 {
            serial_secs = secs;
        }
        // Micro-batches processed, not optimizer steps: the parallel path
        // takes one step per round of `workers` micro-batches, so steps/sec
        // alone would understate the work done.
        let micro = report.steps * report.workers;
        let point = Point {
            workers: report.workers,
            secs,
            microbatches_per_sec: micro as f64 / secs,
            speedup_vs_serial: serial_secs / secs,
            final_loss: report.final_loss,
        };
        println!(
            "workers={:<2} {:6.2}s  {:6.2} micro-batches/s  speedup {:4.2}x  final loss {:.4}",
            point.workers,
            point.secs,
            point.microbatches_per_sec,
            point.speedup_vs_serial,
            point.final_loss
        );
        points.push(point);
    }

    record_results(
        "micro_parallel",
        &Payload {
            points,
            note: "speedup is wall-clock serial/parallel on the same pool; \
                   worker counts above the core count cannot help"
                .into(),
        },
    );
}
