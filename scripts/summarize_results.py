#!/usr/bin/env python3
"""Summarize bench_results/*.json as markdown snippets for EXPERIMENTS.md.

Usage: python3 scripts/summarize_results.py [bench_results_dir]
"""
import json
import sys
from pathlib import Path

DIR = Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")


def load(name):
    p = DIR / f"{name}.json"
    return json.loads(p.read_text()) if p.exists() else None


def fmt(xs):
    return " | ".join(f"{x:.3f}" for x in xs)


def main():
    if d := load("table1_repr_learning"):
        print("## table1")
        print("methods:", d["methods"])
        print("ucr avg acc:", fmt(d["ucr_avg_acc"]), " rank:", fmt(d["ucr_avg_rank"]))
        print("uea avg acc:", fmt(d["uea_avg_acc"]), " rank:", fmt(d["uea_avg_rank"]))
    if d := load("table2_supervised"):
        print("## table2")
        print("methods:", d["methods"])
        print("avg acc:", fmt(d["avg_acc"]), " rank:", fmt(d["avg_rank"]))
    if d := load("table3_single_source"):
        print("## table3")
        print("methods:", d["methods"])
        for name, row in d["rows"]:
            print(f"  {name}: {fmt(row)}")
        print("avg acc:", fmt(d["avg_acc"]))
    if d := load("table4_foundation"):
        print("## table4")
        print("methods:", d["methods"])
        print("ucr avg acc:", fmt(d["ucr_avg_acc"]))
        print("uea avg acc:", fmt(d["uea_avg_acc"]))
    if d := load("table5_fewshot"):
        print("## table5")
        print("methods:", d["methods"])
        for ratio, acc in zip(d["ratios"], d["avg_acc_per_ratio"]):
            print(f"  {ratio:.0%}: {fmt(acc)}")
    if d := load("table6_ablation"):
        print("## table6")
        for v, a, p in zip(d["variants"], d["avg_acc"], d["paper_avg_acc"]):
            print(f"  {v}: measured {a:.3f} (paper {p:.3f})")
    if d := load("table7_pretrain_source"):
        print("## table7")
        print("pools:", d["pools"])
        print("ucr:", fmt(d["ucr_avg_acc"]), " uea:", fmt(d["uea_avg_acc"]))
    if d := load("fig8d_negative_transfer"):
        m = lambda v: sum(v) / len(v)
        print("## fig8d")
        print(
            f"ts2vec case {m(d['ts2vec_case_by_case']):.3f} | "
            f"ts2vec multi {m(d['ts2vec_multi_source']):.3f} | "
            f"aimts {m(d['aimts']):.3f}"
        )


if __name__ == "__main__":
    main()
