#!/usr/bin/env bash
# Soundness gate: the dynamic layer behind aimts-lint's static rules.
#
#   1. Miri interprets the tensor crate's unsafe modules (the HotCell
#      aliasing/race validator, the lock-order checker, the SIMD scalar
#      fallbacks) looking for UB the debug tally cannot see.
#   2. A ThreadSanitizer build runs the parallel determinism tests to
#      catch data races the single-process tally misses.
#   3. The live workspace must lint at zero diagnostics with the full
#      A001-A012 pack.
#
# Each tool-dependent stage is gated on the tool being installed: CI
# installs nightly + miri + rust-src and runs everything; a dev box
# without them still runs the lint stage and reports what was skipped
# (skips are loud, never silent). AIMTS_SOUNDNESS_STRICT=1 turns a skip
# into a failure (CI sets it so a broken toolchain cannot pass quietly).
set -euo pipefail

cd "$(dirname "$0")/.."

strict="${AIMTS_SOUNDNESS_STRICT:-0}"
skipped=0

skip() {
    echo "soundness: SKIP $1 ($2)" >&2
    skipped=1
}

have_miri() {
    cargo +nightly miri --version >/dev/null 2>&1
}

have_rust_src() {
    [ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]
}

echo "== soundness: workspace lint (A001-A012, zero diagnostics) =="
cargo run -q -p aimts-lint -- check

echo "== soundness: miri on tensor unsafe modules =="
if have_miri; then
    # Scoped to the modules that contain (or guard) the unsafe code:
    # hotcell's UnsafeCell storage + race validator, lockorder's tokens,
    # and the SIMD kernels' scalar dispatch path (Miri takes the
    # fallback branch; the pointer arithmetic around it still runs).
    MIRIFLAGS="${MIRIFLAGS:---strict-provenance}" \
        cargo +nightly miri test -p aimts-tensor --lib hotcell:: lockorder:: simd::
else
    skip "miri" "cargo +nightly miri not installed"
fi

echo "== soundness: ThreadSanitizer on parallel determinism tests =="
if have_rust_src; then
    # TSan needs -Zbuild-std so std itself is instrumented; otherwise
    # every std synchronization primitive is an opaque (false) race.
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std \
        --target x86_64-unknown-linux-gnu \
        --test parallel_determinism
else
    skip "tsan" "nightly rust-src not installed (-Zbuild-std needs it)"
fi

if [ "$skipped" = 1 ] && [ "$strict" = 1 ]; then
    echo "soundness: FAIL — stages were skipped under AIMTS_SOUNDNESS_STRICT=1" >&2
    exit 1
fi
echo "soundness: done"
