//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Supports exactly the shape this workspace derives on: non-generic
//! structs with named fields. The expansion goes through `serde::Value`,
//! so no type information is needed — field types are inferred at the use
//! site (`serde::field` for deserialization, `Serialize::to_value` for
//! serialization). Anything else (enums, tuple structs, generics) is a
//! compile error with a pointed message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Extract the struct name and its named fields from the derive input.
fn parse_struct(input: TokenStream, trait_name: &str) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including expanded doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    let mut name = None;
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err(format!("derive({trait_name}): expected struct name")),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "derive({trait_name}) shim supports only structs with named fields"
                ));
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| format!("derive({trait_name}): no struct found"))?;
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "derive({trait_name}) shim does not support generic structs"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "derive({trait_name}) shim supports only structs with named fields"
                ));
            }
            Some(_) => {}
            None => return Err(format!("derive({trait_name}): struct `{name}` has no body")),
        }
    };

    // Split the body on top-level commas (tracking `<...>` depth so types
    // like `BTreeMap<String, T>` do not split a field) and take the ident
    // preceding the first top-level `:` of each piece.
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut pieces: Vec<Vec<TokenTree>> = Vec::new();
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                pieces.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tok);
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    for piece in pieces {
        let mut it = piece.into_iter().peekable();
        let mut field = None;
        while let Some(tok) = it.next() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    field = Some(id.to_string());
                    break;
                }
                _ => {}
            }
        }
        if let Some(f) = field {
            fields.push(f);
        }
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input, "Serialize") {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!("fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n\
         let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
         {pushes}\
         serde::Value::Object(fields)\n\
         }}\n}}\n",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input, "Deserialize") {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let inits: String = shape
        .fields
        .iter()
        .map(|f| format!("{f}: serde::field(v, {f:?})?,\n"))
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
         Ok({name} {{\n{inits}}})\n\
         }}\n}}\n",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
