//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the few external APIs it relies on. Only what the
//! AimTS crates call is implemented: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is a SplitMix64 generator: deterministic per seed, fast,
//! and statistically strong enough for the seeded data generation and
//! Box–Muller sampling the workspace does. It intentionally does **not**
//! reproduce the upstream `StdRng` (ChaCha12) byte streams; all code in
//! this repository only requires per-seed determinism, not a specific
//! stream.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`:
    /// uniform `[0, 1)` for floats, uniform over all values for integers.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    ///
    /// Panics on an empty range, mirroring upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (self.end - self.start) * $unit(rng);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}
range_float!(f32, unit_f32; f64, unit_f64);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        /// The generator's internal state word.
        ///
        /// Offline-shim extension (upstream `StdRng` exposes no state):
        /// training checkpoints persist this so a resumed run continues the
        /// exact random stream instead of restarting it.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild a generator mid-stream from a [`StdRng::state`] word.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(3);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(3);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(4);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&x));
            let y = r.gen_range(0usize..=7);
            assert!(y <= 7);
            let z = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let vals: Vec<f64> = (0..4096).map(|_| r.gen::<f64>()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
