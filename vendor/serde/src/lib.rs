//! Offline stand-in for the subset of `serde` used by this workspace.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through a concrete JSON-like [`Value`] tree: `Serialize` lowers a type
//! to a `Value`, `Deserialize` rebuilds it from one. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) that implement those traits for structs with named
//! fields — the only derive shape this workspace uses. `serde_json` in
//! `vendor/` renders and parses the `Value` tree.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model shared by `Serialize`/`Deserialize` and the
/// `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// View an array value as a slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (accepts any of the number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Signed integer value, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Unsigned integer value, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch and decode a struct field; used by the derive expansion.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let f = v
        .get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
    T::from_value(f).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

fn as_i128(v: &Value) -> Result<i128, Error> {
    match v {
        Value::Int(x) => Ok(*x as i128),
        Value::UInt(x) => Ok(*x as i128),
        Value::Float(x) if x.fract() == 0.0 => Ok(*x as i128),
        other => Err(Error::msg(format!("expected integer, got {other:?}"))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = as_i128(v)?;
                <$t>::try_from(x)
                    .map_err(|_| Error::msg(format!("integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(x) => Ok(*x as f64),
            Value::UInt(x) => Ok(*x as f64),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array of length {}, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<i32>::from_value(&vec![-1i32, 2, 3].to_value()).unwrap(),
            vec![-1, 2, 3]
        );
        let t = (1u32, "x".to_string(), 2.5f64);
        assert_eq!(<(u32, String, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Some(3u8).to_value(), Value::UInt(3));
    }
}
