//! Offline stand-in for the subset of `serde_json` used by this workspace:
//! `to_string`, `to_string_pretty`, and `from_str` over the vendored
//! `serde::Value` model.
//!
//! Float formatting uses Rust's shortest round-trip representation, so
//! checkpoint save/load cycles reproduce `f32` tensors bit-exactly.
//! Non-finite floats are written as the extended literals `NaN`,
//! `Infinity`, and `-Infinity`, which the parser also accepts — both ends
//! of the pipe live in this repository.

use serde::{Deserialize, Serialize};

pub use serde::Error;
pub use serde::Value;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, level, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, val), i, l| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, val, i, l);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * level));
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "Infinity" } else { "-Infinity" });
    } else {
        // `{}` on f64 is the shortest string that round-trips.
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'N') if self.eat_literal("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_literal("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_nested_structures() {
        let mut m: BTreeMap<String, Vec<f32>> = BTreeMap::new();
        m.insert("a".into(), vec![1.0, -2.5, 3.25e-8]);
        m.insert("weird \"key\"\n".into(), vec![]);
        let s = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<f32>> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn f32_payloads_survive_exactly() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.731).sin() * 1e-3).collect();
        let back: Vec<f32> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let xs = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2], f64::NEG_INFINITY);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
