//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! Implements a small but honest wall-clock harness: each benchmark is
//! warmed up, an iteration count targeting a fixed sample duration is
//! chosen, several samples are taken, and the fastest sample's
//! nanoseconds-per-iteration is reported (minimum over samples is the
//! standard low-noise estimator for micro-benchmarks). Output is one line
//! per benchmark:
//!
//! ```text
//! bench-name              time: 12345 ns/iter  (5 samples x 1000 iters)
//! ```
//!
//! Supported API: `Criterion::{bench_function, benchmark_group}`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, `criterion_main!`.
//! Command-line: flags are ignored; the first free argument is a substring
//! filter on benchmark names, matching `cargo bench -- <filter>` usage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
const SAMPLES: u32 = 5;

/// Benchmark driver and registry of CLI options.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    /// Run each benchmark body exactly once (set by `--test`, which cargo
    /// passes when benchmarks are executed under `cargo test --benches`).
    test_mode: bool,
}

impl Criterion {
    /// Build from `std::env::args`, mirroring how criterion binaries are
    /// invoked by `cargo bench` / `cargo test`.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn run_one<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: ok (test mode)");
            return;
        }
        // Warm up and estimate per-iteration cost.
        let mut iters: u64 = 1;
        let mut per_iter;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if b.elapsed >= WARMUP || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        // Measure: fixed iteration count per sample, keep the fastest.
        let sample_iters =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            best = best.min(b.elapsed.as_secs_f64() / sample_iters as f64);
        }
        let ns = best * 1e9;
        println!("{name:<44} time: {ns:>12.1} ns/iter  ({SAMPLES} samples x {sample_iters} iters)");
    }
}

/// Named group of related benchmarks; names are prefixed `group/bench`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `inner`, running it the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(inner());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            calls += 1;
        });
        assert!(
            calls >= 2,
            "warmup + samples should invoke the closure repeatedly"
        );
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("xyz".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| 1);
        });
        assert!(!ran);
    }
}
