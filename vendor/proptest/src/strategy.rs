//! The [`Strategy`] trait and its implementations for numeric ranges,
//! plus the `prop_map` / `prop_flat_map` combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy yielding a fixed value (provided for parity with upstream).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Tuples of strategies generate tuples of values.
macro_rules! strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
