//! `prop::collection::vec` — vectors with strategy-driven elements and a
//! uniformly drawn length.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.uniform_usize(self.size.lo, self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `len` elements of `element`, `len` drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
