//! `prop::sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::TestRng;

pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform_usize(0, self.items.len() - 1);
        self.items[i].clone()
    }
}

/// Strategy choosing uniformly among `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}
