//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Implements random-input property testing without shrinking: each
//! `proptest!` test runs `ProptestConfig::cases` iterations with inputs
//! drawn from [`Strategy`] values seeded deterministically from the test
//! name and case index, so failures are reproducible run-to-run. The
//! failing case's seed is printed via the panic message of the violated
//! `prop_assert!`.
//!
//! Supported strategy surface: numeric ranges (`lo..hi`, `lo..=hi`),
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`, and
//! `prop_flat_map`.

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::Strategy;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn uniform_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        debug_assert!(lo <= hi_inclusive);
        let span = (hi_inclusive - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// FNV-1a hash of the test name; combined with the case index to seed
/// each case's [`TestRng`].
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Defines property tests. Mirrors the `proptest!` surface this workspace
/// uses: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let __seed = $crate::seed_for(stringify!($name), __case);
                    let mut __rng = $crate::TestRng::seeded(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assert a property; panics (failing the test) when violated.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = (u64, u64)> {
        (0u64..1000).prop_map(|x| (x, 2 * x))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0.25f32..0.75, n in 1usize..=4) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(-1f64..1.0, 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec![2u8, 3, 5, 7])) {
            prop_assert!([2u8, 3, 5, 7].contains(&x));
        }

        #[test]
        fn map_and_flat_map_compose(pair in doubled(), v in (2usize..5).prop_flat_map(|n| prop::collection::vec(0u64..10, n..=n))) {
            prop_assert_eq!(pair.1, 2 * pair.0);
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(crate::seed_for("a", 1), crate::seed_for("a", 1));
        assert_ne!(crate::seed_for("a", 1), crate::seed_for("b", 1));
        assert_ne!(crate::seed_for("a", 1), crate::seed_for("a", 2));
    }
}
