//! Offline stand-in for the subset of `rayon` used by this workspace.
//!
//! Provides `par_chunks_mut(..).for_each(..)` and
//! `par_chunks_mut(..).enumerate().for_each(..)` over mutable slices —
//! exactly the shapes the tensor kernels use. Chunks are distributed over
//! scoped OS threads when the machine has more than one logical CPU and
//! the workload is large enough to amortize thread spawns; otherwise the
//! loop runs inline. Disjointness of the chunks is guaranteed by
//! `slice::chunks_mut`, so no unsafe code is needed.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Entry point mirroring `rayon::prelude::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            parts: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Pending parallel iteration over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    parts: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { parts: self.parts }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run(self.parts, |_, part| f(part));
    }
}

/// Enumerated variant carrying the global chunk index.
pub struct ParChunksMutEnumerate<'a, T> {
    parts: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run(self.parts, |i, part| f((i, part)));
    }
}

/// Spawning threads only pays off when each worker gets a meaningful
/// amount of data; below this many total elements the loop runs inline.
const PARALLEL_MIN_ELEMS: usize = 16 * 1024;

fn run<T: Send, F>(mut parts: Vec<&mut [T]>, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let workers = threads.min(parts.len());
    if workers <= 1 || total < PARALLEL_MIN_ELEMS {
        for (i, part) in parts.iter_mut().enumerate() {
            f(i, part);
        }
        return;
    }
    // Hand each worker a contiguous run of chunks; ownership of the
    // disjoint `&mut [T]` parts moves into the worker, so this is safe.
    let per = parts.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0;
        while !parts.is_empty() {
            let rest = parts.split_off(per.min(parts.len()));
            let own = std::mem::replace(&mut parts, rest);
            let base = start;
            start += own.len();
            scope.spawn(move || {
                for (off, part) in own.into_iter().enumerate() {
                    f(base + off, part);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut v = vec![0u32; 100_000];
        v.par_chunks_mut(317).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (j / 317) as u32);
        }
    }

    #[test]
    fn small_input_runs_inline() {
        let mut v = [1i64; 10];
        v.par_chunks_mut(3).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x *= 2;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }
}
