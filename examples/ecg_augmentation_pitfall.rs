//! The paper's motivating example (Fig. 2 / Fig. 9): on ECG data, some
//! augmentations *change the label*. A healthy ECG has an upright T wave;
//! jitter or slicing can invert or distort it so the series reads as
//! myocardial infarction. Prototypes — averages over many augmented views
//! — wash the damage out.
//!
//! Run with:
//! ```sh
//! cargo run --release --example ecg_augmentation_pitfall
//! ```

use aimts_repro::aimts_augment::{default_bank, Augmentation};
use aimts_repro::aimts_baselines::FcnClassifier;
use aimts_repro::aimts_data::special::ecg200_like;
use aimts_repro::aimts_data::{Sample, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn augment_split(split: &Split, aug: &Augmentation, rng: &mut StdRng) -> Split {
    Split::new(
        split
            .samples
            .iter()
            .map(|s| Sample::new(aug.apply_multivariate(&s.vars, rng), s.label))
            .collect(),
    )
}

/// Element-wise mean over one view per augmentation: the sample prototype.
fn prototype_split(split: &Split, rng: &mut StdRng) -> Split {
    let bank = default_bank();
    Split::new(
        split
            .samples
            .iter()
            .map(|s| {
                let mut acc = vec![vec![0f32; s.len()]; s.n_vars()];
                for aug in &bank {
                    let view = aug.apply_multivariate(&s.vars, rng);
                    for (a, v) in acc.iter_mut().zip(&view) {
                        for (x, y) in a.iter_mut().zip(v) {
                            *x += y / bank.len() as f32;
                        }
                    }
                }
                Sample::new(acc, s.label)
            })
            .collect(),
    )
}

fn main() {
    // ECG200 equivalent: class 0 = healthy (upright T wave),
    // class 1 = myocardial infarction (inverted T wave).
    let ds = ecg200_like(7);
    println!(
        "ECG200(sim): {} train / {} test samples, classes = healthy vs MI",
        ds.train.len(),
        ds.test.len()
    );

    // Train a supervised classifier on the raw training data.
    let mut clf = FcnClassifier::new(ds.n_vars(), 16, ds.n_classes, 0);
    clf.fit(&ds, 40, 8, 1e-2, 0);
    let raw = clf.evaluate(&ds.test);
    println!("\naccuracy on raw test data:                {raw:.3}");

    // The same test data after single augmentations: semantics can shift.
    let mut rng = StdRng::seed_from_u64(3407);
    for aug in [
        Augmentation::Jitter { sigma: 0.35 },
        Augmentation::Slicing { ratio: 0.5 },
        Augmentation::TimeWarp {
            knots: 4,
            sigma: 0.4,
        },
    ] {
        let acc = clf.evaluate(&augment_split(&ds.test, &aug, &mut rng));
        println!(
            "accuracy on {:<11} augmented test data: {acc:.3}",
            aug.name()
        );
    }

    // Prototypes restore the semantics (paper Fig. 9c).
    let proto_acc = clf.evaluate(&prototype_split(&ds.test, &mut rng));
    println!("accuracy on prototype test data:          {proto_acc:.3}");
    println!(
        "\ntakeaway: single augmented views can flip the clinical label, while the\n\
         prototype (mean over augmentations) stays close to the raw accuracy —\n\
         the motivation for AimTS's prototype-based contrastive learning."
    );
}
