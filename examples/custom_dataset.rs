//! Bringing your own data: (1) define a synthetic dataset via
//! [`DatasetSpec`], (2) load a real dataset in the UCR tab-separated
//! format, and (3) compare AimTS fine-tuning against the classical ROCKET
//! and 1-NN DTW baselines on it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use aimts_repro::aimts::{AimTs, AimTsConfig, FineTuneConfig};
use aimts_repro::aimts_baselines::{Metric, OneNn, RocketClassifier};
use aimts_repro::aimts_data::generator::{DatasetSpec, PatternFamily};
use aimts_repro::aimts_data::loader::load_ucr_tsv;
use std::fmt::Write as _;
use std::fs;

fn main() {
    // --- 1. A synthetic dataset from a pattern family --------------------
    let spec = DatasetSpec {
        n_classes: 3,
        length: 96,
        train_per_class: 12,
        test_per_class: 25,
        noise: 0.15,
        ..DatasetSpec::new("MyMachineFaults", PatternFamily::ImpulsePeriod, 2024)
    };
    let ds = spec.generate();
    println!(
        "generated `{}`: {} classes, {} train / {} test, length {}",
        ds.name,
        ds.n_classes,
        ds.train.len(),
        ds.test.len(),
        ds.series_len()
    );

    // --- 2. Round-trip through the on-disk UCR TSV format ----------------
    let dir = std::env::temp_dir().join("aimts_custom_dataset");
    fs::create_dir_all(&dir).expect("tmp dir");
    for (split, name) in [
        (&ds.train, "MyMachineFaults_TRAIN.tsv"),
        (&ds.test, "MyMachineFaults_TEST.tsv"),
    ] {
        let mut body = String::new();
        for s in &split.samples {
            write!(body, "{}", s.label).unwrap();
            for v in &s.vars[0] {
                write!(body, "\t{v}").unwrap();
            }
            body.push('\n');
        }
        fs::write(dir.join(name), body).expect("write tsv");
    }
    let loaded = load_ucr_tsv(&dir, "MyMachineFaults").expect("load UCR tsv");
    assert_eq!(loaded.train.len(), ds.train.len());
    println!(
        "re-loaded from UCR TSV format: {} train samples",
        loaded.train.len()
    );

    // --- 3. Compare three very different classifiers ---------------------
    // AimTS without pre-training here (see `quickstart` for pre-training);
    // this shows the fine-tuning API works standalone too.
    let model = AimTs::new(
        AimTsConfig {
            hidden: 16,
            repr_dim: 32,
            proj_dim: 16,
            ..AimTsConfig::default()
        },
        3407,
    );
    let tuned = model.fine_tune(
        &loaded,
        &FineTuneConfig {
            epochs: 40,
            batch_size: 8,
            ..Default::default()
        },
    );
    println!(
        "\nAimTS encoder + MLP head accuracy: {:.3}",
        tuned.evaluate(&loaded.test)
    );

    let mut rocket = RocketClassifier::new(500, loaded.series_len(), 1);
    rocket.fit(&loaded);
    println!(
        "ROCKET (500 kernels + ridge)  accuracy: {:.3}",
        rocket.evaluate(&loaded.test)
    );

    let nn = OneNn::fit(&loaded, Metric::Dtw { band: 0.1 });
    println!(
        "1-NN DTW (10% band)           accuracy: {:.3}",
        nn.evaluate(&loaded.test)
    );
}
