//! Inspect the series→image pipeline behind AimTS's second modality:
//! render a multivariate sample as the stitched RGB line chart the image
//! encoder consumes, dump it as a PPM file you can open in any viewer,
//! and embed both modalities to see the representations align.
//!
//! Run with:
//! ```sh
//! cargo run --release --example series_to_image
//! ```

use aimts_repro::aimts::{AimTs, AimTsConfig};
use aimts_repro::aimts_data::archives::uea_like_archive;
use aimts_repro::aimts_imaging::{grid_layout, render_sample, ImageConfig};
use aimts_repro::aimts_nn::Module;
use aimts_repro::aimts_tensor::{no_grad, Tensor};
use std::fs;
use std::io::Write as _;

fn main() {
    // A multivariate sample from the UEA-like archive.
    let ds = &uea_like_archive(1, 3)[0];
    let sample = &ds.train.samples[0];
    println!(
        "sample from `{}`: {} variables x {} time steps (label {})",
        ds.name,
        sample.n_vars(),
        sample.len(),
        sample.label
    );
    let (rows, cols) = grid_layout(sample.n_vars(), 4);
    println!("grid layout: {rows} x {cols} sub-charts");

    // Render without standardization so the PPM is human-viewable.
    let cfg = ImageConfig {
        standardize: false,
        ..ImageConfig::default()
    };
    let img = render_sample(&sample.vars, &cfg);
    let path = std::env::temp_dir().join("aimts_sample.ppm");
    let mut f = fs::File::create(&path).expect("create ppm");
    writeln!(f, "P6\n{} {}\n255", img.width, img.height).unwrap();
    let hw = img.height * img.width;
    let mut bytes = Vec::with_capacity(hw * 3);
    for i in 0..hw {
        for c in 0..3 {
            bytes.push((img.data[c * hw + i] * 255.0) as u8);
        }
    }
    f.write_all(&bytes).unwrap();
    println!(
        "wrote {} ({}x{} RGB)",
        path.display(),
        img.width,
        img.height
    );

    // Embed both modalities with a fresh AimTS model and compare: after
    // pre-training these are pulled together by the series-image loss.
    let model = AimTs::new(AimTsConfig::tiny(), 3407);
    let std_img = render_sample(&sample.vars, &model.cfg.image);
    no_grad(|| {
        let u = model
            .img_proj
            .forward(&model.image_encoder.encode(&Tensor::from_vec(
                std_img.data.clone(),
                &[1, 3, std_img.height, std_img.width],
            )));
        let v = model.ts_proj.forward(&model.encode(&[&sample.vars]));
        let (u, v) = (u.l2_normalize(1), v.l2_normalize(1));
        let cos: f32 = u.to_vec().iter().zip(v.to_vec()).map(|(a, b)| a * b).sum();
        println!("cosine(series repr, image repr) at random init: {cos:.3}");
        println!("(pre-training maximizes this for matching pairs — see `quickstart`)");
    });
}
