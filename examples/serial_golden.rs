//! Print a digest of a small deterministic serial pre-training run:
//! final-loss bit pattern plus an FNV-1a hash of every parameter's bits.
//! Used to pin the serial trajectory across refactors.

use aimts::{AimTs, AimTsConfig, PretrainConfig};
use aimts_data::archives::monash_like_pool;
use aimts_nn::Module;

fn main() {
    let pool = monash_like_pool(4, 0);
    let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
    let report = model
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs: 2,
                batch_size: 4,
                workers: 1,
                ..Default::default()
            },
        )
        .expect("pretrain");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for p in model.parameters() {
        for b in p.data_bits() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    println!("final_loss_bits = 0x{:08x}", report.final_loss.to_bits());
    println!("param_fnv = 0x{hash:016x}");
    println!(
        "epoch_loss_bits = {:?}",
        report
            .epoch_losses
            .iter()
            .map(|l| format!("0x{:08x}", l.to_bits()))
            .collect::<Vec<_>>()
    );
}
