//! Few-shot transfer (paper Table V): fine-tune a multi-source pre-trained
//! AimTS with only 5% / 15% / 20% of each downstream training split and
//! compare against training the same architecture from scratch.
//!
//! Run with:
//! ```sh
//! cargo run --release --example few_shot_transfer
//! ```

use aimts_repro::aimts::{AimTs, AimTsConfig, FineTuneConfig, PretrainConfig};
use aimts_repro::aimts_data::archives::monash_like_pool;
use aimts_repro::aimts_data::special::fewshot_suite;
use aimts_repro::aimts_data::{few_shot_subset, Dataset};

fn main() {
    let cfg = AimTsConfig {
        hidden: 16,
        repr_dim: 32,
        proj_dim: 16,
        ..AimTsConfig::default()
    };

    // Pre-trained model vs an identically-initialized random model.
    let pool = monash_like_pool(8, 0);
    let mut pretrained = AimTs::new(cfg.clone(), 3407);
    pretrained
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs: 3,
                batch_size: 8,
                lr: 1e-3,
                ..PretrainConfig::default()
            },
        )
        .expect("pre-training failed");
    let scratch = AimTs::new(cfg, 3407);

    let suite = fewshot_suite(7);
    let fcfg = FineTuneConfig {
        epochs: 40,
        batch_size: 8,
        ..FineTuneConfig::default()
    };

    println!(
        "{:<26} {:>7} {:>12} {:>12}",
        "dataset", "ratio", "pre-trained", "from-scratch"
    );
    for ratio in [0.05f32, 0.15, 0.20] {
        let mut sum_p = 0.0;
        let mut sum_s = 0.0;
        for ds in &suite {
            let few = Dataset {
                name: ds.name.clone(),
                domain: ds.domain.clone(),
                n_classes: ds.n_classes,
                train: few_shot_subset(&ds.train, ratio, 3407),
                test: ds.test.clone(),
            };
            let acc_p = pretrained.fine_tune(&few, &fcfg).evaluate(&few.test);
            let acc_s = scratch.fine_tune(&few, &fcfg).evaluate(&few.test);
            println!(
                "{:<26} {:>6.0}% {:>12.3} {:>12.3}",
                few.name,
                ratio * 100.0,
                acc_p,
                acc_s
            );
            sum_p += acc_p;
            sum_s += acc_s;
        }
        println!(
            "{:<26} {:>6.0}% {:>12.3} {:>12.3}  <- Avg.ACC\n",
            "(average)",
            ratio * 100.0,
            sum_p / suite.len() as f64,
            sum_s / suite.len() as f64
        );
    }
    println!("paper Table V: AimTS at 5% roughly matches the baselines at 15%.");
}
