//! Quickstart: pre-train AimTS on a multi-source pool, fine-tune on a
//! downstream classification dataset, evaluate, and round-trip a
//! checkpoint.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aimts_repro::aimts::{AimTsConfig, FineTuneConfig, PretrainConfig};
use aimts_repro::aimts_data::archives::{monash_like_pool, ucr_like_archive};
use aimts_repro::prelude::*;

fn main() {
    // 1. A multi-source, unlabeled pre-training pool (Monash-archive
    //    stand-in): samples from 12 domains with mixed lengths and
    //    variable counts.
    let pool = monash_like_pool(8, 0);
    println!("pre-training pool: {} unlabeled samples", pool.len());

    // 2. Pre-train the AimTS model (TS encoder + image encoder) with the
    //    paper's two losses: prototype-based and series-image contrastive.
    let cfg = AimTsConfig {
        hidden: 16,
        repr_dim: 32,
        proj_dim: 16,
        ..AimTsConfig::default()
    };
    let mut model = AimTs::new(cfg, 3407);
    let pcfg = PretrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 1e-3,
        ..PretrainConfig::default()
    };
    let report = model.pretrain(&pool, &pcfg).expect("pre-training failed");
    println!(
        "pre-trained: {} steps, loss {:.3} -> {:.3} (proto {:.3}, series-image {:.3})",
        report.steps,
        report.epoch_losses[0],
        report.final_loss,
        report.final_proto_loss,
        report.final_si_loss
    );

    // 3. Save and re-load the checkpoint (JSON state dict).
    let ckpt = std::env::temp_dir().join("aimts_quickstart.json");
    model.save(&ckpt).expect("save checkpoint");
    let mut reloaded = AimTs::new(
        AimTsConfig {
            hidden: 16,
            repr_dim: 32,
            proj_dim: 16,
            ..AimTsConfig::default()
        },
        0,
    );
    reloaded.load(&ckpt).expect("load checkpoint");
    println!("checkpoint round-tripped via {}", ckpt.display());

    // 4. Fine-tune on a downstream dataset the model never saw, following
    //    the paper's Fig. 3(b): full fine-tuning plus an MLP classifier.
    let ds = &ucr_like_archive(1, 42)[0];
    println!(
        "downstream dataset `{}`: {} train / {} test samples, {} classes",
        ds.name,
        ds.train.len(),
        ds.test.len(),
        ds.n_classes
    );
    let fcfg = FineTuneConfig {
        epochs: 30,
        batch_size: 8,
        ..FineTuneConfig::default()
    };
    let tuned = reloaded.fine_tune(ds, &fcfg);
    let acc = tuned.evaluate(&ds.test);
    println!("test accuracy after fine-tuning: {acc:.3}");

    // 5. Individual predictions.
    let preds = tuned.predict(&ds.test);
    let truth = ds.test.labels();
    println!(
        "first five predictions vs labels: {:?} vs {:?}",
        &preds[..5],
        &truth[..5]
    );
}
