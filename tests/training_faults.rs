//! Fault-injection suite for the self-healing training loop: NaN
//! micro-batches are skipped without killing the run, a panicking worker
//! degrades its step to the surviving replicas, runs of consecutive
//! anomalies roll back to the last good epoch boundary — bit-exactly on
//! the serial path — and an exhausted rollback budget aborts with a typed
//! error, never a process panic.

use aimts::{
    AimTs, AimTsConfig, CheckpointPolicy, FaultPlan, HealthPolicy, PretrainConfig, TrainError,
};
use aimts_data::archives::monash_like_pool;
use aimts_data::MultiSeries;

fn pool(n: usize) -> Vec<MultiSeries> {
    monash_like_pool(2, 0).into_iter().take(n).collect()
}

fn pcfg(workers: usize) -> PretrainConfig {
    PretrainConfig {
        epochs: 3,
        batch_size: 4,
        seed: 3407,
        workers,
        ..PretrainConfig::default()
    }
}

#[test]
fn nan_microbatch_is_skipped_and_training_continues() {
    let mut pool = pool(16);
    // Fully poison one sample: every batch containing it yields a NaN loss.
    for series in pool[5].iter_mut() {
        for x in series.iter_mut() {
            *x = f32::NAN;
        }
    }
    let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
    let report = model
        .pretrain(&pool, &pcfg(1))
        .expect("a poisoned sample must not kill the run");

    // One batch per epoch is poisoned; the rest train normally.
    assert!(
        report.health.skipped_steps >= 1,
        "the NaN batch must be skipped: {}",
        report.health
    );
    assert_eq!(report.health.rollbacks, 0, "{}", report.health);
    assert!(report.steps >= 1, "clean batches must still step");
    assert!(report.final_loss.is_finite(), "loss: {}", report.final_loss);
    assert!(
        report.epoch_losses.iter().all(|l| l.is_finite()),
        "per-epoch losses must exclude skipped steps: {:?}",
        report.epoch_losses
    );
    assert!(
        model.flat_parameters().iter().all(|v| v.is_finite()),
        "parameters must stay finite"
    );
}

#[test]
fn worker_panic_degrades_step_to_survivors() {
    let pool = pool(16);
    let mut cfg = pcfg(4);
    cfg.epochs = 2;
    cfg.health = HealthPolicy {
        fault: FaultPlan {
            panic_on_micro: Some(1),
            ..FaultPlan::default()
        },
        ..HealthPolicy::default()
    };
    let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
    let report = model
        .pretrain(&pool, &cfg)
        .expect("a panicking worker must not kill the run");

    assert_eq!(report.workers, 4);
    assert_eq!(report.health.worker_panics, 1, "{}", report.health);
    assert_eq!(report.health.degraded_steps, 1, "{}", report.health);
    assert_eq!(report.health.rollbacks, 0, "{}", report.health);
    assert!(report.final_loss.is_finite());
    assert!(model.flat_parameters().iter().all(|v| v.is_finite()));
}

#[test]
fn consecutive_bad_steps_roll_back_and_abort_on_last_good_state() {
    let pool = pool(12);

    // Reference: one clean epoch with the identical seed and schedule. Its
    // step count tells us where the epoch boundary falls (the pool is
    // grouped by variable count, so it is not just `len / batch_size`).
    let mut reference = AimTs::new(AimTsConfig::tiny(), 7);
    let mut ref_cfg = pcfg(1);
    ref_cfg.epochs = 1;
    let ref_report = reference
        .pretrain(&pool, &ref_cfg)
        .expect("clean reference run");
    let steps_per_epoch = ref_report.steps as u64;

    // Faulted run: epoch 1 is clean, every later attempt is forced
    // anomalous. K=2 consecutive skips trigger a rollback; after R=2
    // rollbacks the third trigger aborts. No checkpoint directory is
    // configured — rollback must work from the in-memory last-good state.
    let mut victim = AimTs::new(AimTsConfig::tiny(), 7);
    let mut cfg = pcfg(1);
    cfg.health = HealthPolicy {
        max_bad_steps: 2,
        max_rollbacks: 2,
        fault: FaultPlan {
            bad_steps_from: Some(steps_per_epoch),
            ..FaultPlan::default()
        },
        ..HealthPolicy::default()
    };
    let err = victim
        .pretrain(&pool, &cfg)
        .expect_err("an exhausted rollback budget must abort");
    match err {
        TrainError::Diverged {
            rollbacks,
            consecutive_bad,
            report,
            ..
        } => {
            assert_eq!(rollbacks, 2);
            assert_eq!(consecutive_bad, 2);
            assert_eq!(report.rollbacks, 2);
            // 2 skips per trigger, 3 triggers (two rollbacks + the abort).
            assert_eq!(report.skipped_steps, 6, "{report}");
        }
        other => panic!("expected Diverged, got: {other}"),
    }

    // The aborting run leaves the model exactly on the last good
    // epoch-boundary state: bit-identical to the clean one-epoch run.
    let (a, b) = (reference.flat_parameters(), victim.flat_parameters());
    assert_eq!(a.len(), b.len());
    let diverged = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count();
    assert_eq!(
        diverged,
        0,
        "{diverged}/{} parameters differ from the last-good state",
        a.len()
    );
}

#[test]
fn parallel_rollback_ladder_also_aborts_with_typed_error() {
    let pool = pool(16); // 4 micro-batches per round at workers=4
    let mut cfg = pcfg(4);
    cfg.health = HealthPolicy {
        max_bad_steps: 1,
        max_rollbacks: 1,
        fault: FaultPlan {
            bad_steps_from: Some(1), // epoch 1's single round is clean
            ..FaultPlan::default()
        },
        ..HealthPolicy::default()
    };
    let mut model = AimTs::new(AimTsConfig::tiny(), 11);
    let err = model
        .pretrain(&pool, &cfg)
        .expect_err("parallel path must abort through the same ladder");
    match err {
        TrainError::Diverged {
            rollbacks, report, ..
        } => {
            assert_eq!(rollbacks, 1);
            assert_eq!(report.rollbacks, 1);
        }
        other => panic!("expected Diverged, got: {other}"),
    }
    assert!(
        model.flat_parameters().iter().all(|v| v.is_finite()),
        "aborted model must stay on usable weights"
    );
}

#[test]
fn checkpoint_write_failure_is_a_typed_error_not_a_panic() {
    let blocker = std::env::temp_dir().join("aimts_faults_blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let mut cfg = pcfg(1);
    cfg.epochs = 1;
    cfg.checkpoint = CheckpointPolicy {
        dir: Some(blocker.join("ckpts")), // parent is a file: mkdir fails
        every: 1,
        keep_last: 0,
        resume_from: None,
    };
    let mut model = AimTs::new(AimTsConfig::tiny(), 1);
    let err = model
        .pretrain(&pool(8), &cfg)
        .expect_err("an unwritable checkpoint dir must be a typed error");
    assert!(matches!(err, TrainError::Checkpoint(_)), "got: {err}");
    assert!(!err.to_string().is_empty());
}
