//! Cross-checks of the paper's equations: every loss is re-computed with
//! plain scalar loops (an independent implementation of Eq. 3–12) and
//! compared against the tensor implementations used for training.

use aimts_repro::aimts::losses::{
    adaptive_tau, inter_prototype_loss, intra_prototype_loss, proto_loss, series_image_loss,
    series_image_mixup, series_image_naive,
};
use aimts_repro::aimts::mixup::geodesic_mixup;
use aimts_repro::aimts_tensor::Tensor;

fn norm_rows(data: Vec<f32>, b: usize, p: usize) -> (Tensor, Vec<Vec<f32>>) {
    let t = Tensor::from_vec(data, &[b, p]).l2_normalize(1);
    let v = t.to_vec();
    let rows = (0..b).map(|i| v[i * p..(i + 1) * p].to_vec()).collect();
    (t, rows)
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Eq. 3 by hand for one anchor row.
#[test]
fn eq3_adaptive_tau_scalar_reference() {
    let tau0 = 0.15f32;
    let (b, g) = (1usize, 3usize);
    let d = vec![0.0f32, 2.0, 1.0, 2.0, 0.0, 0.5, 1.0, 0.5, 0.0];
    let tau = adaptive_tau(&d, b, g, tau0, true);
    // Row j=0: diagonal is -inf, softmax over {exp(2), exp(1)} for k=1,2.
    let e1 = 2f32.exp();
    let e2 = 1f32.exp();
    assert!((tau[0] - tau0).abs() < 1e-6);
    assert!((tau[1] - (tau0 + e1 / (e1 + e2))).abs() < 1e-5);
    assert!((tau[2] - (tau0 + e2 / (e1 + e2))).abs() < 1e-5);
}

/// Eq. 5 by hand for B = 2.
#[test]
fn eq5_inter_prototype_scalar_reference() {
    let tau = 0.3f32;
    let (z, zr) = norm_rows(vec![1.0, 0.2, -0.4, 0.9], 2, 2);
    let (zt, ztr) = norm_rows(vec![0.8, 0.1, 0.0, 1.0], 2, 2);
    let loss = inter_prototype_loss(&z, &zt, tau).item();

    let mut expected = 0f32;
    for i in 0..2 {
        let mut denom = 0f32;
        for j in 0..2 {
            if j != i {
                denom += (dot(&zr[i], &zr[j]) / tau).exp();
            }
            denom += (dot(&zr[i], &ztr[j]) / tau).exp();
        }
        let num = (dot(&zr[i], &ztr[i]) / tau).exp();
        expected += -(num / denom).ln();
    }
    expected /= 2.0;
    assert!((loss - expected).abs() < 1e-4, "{loss} vs {expected}");
}

/// Eq. 4 by hand for B = 1, G = 2.
#[test]
fn eq4_intra_prototype_scalar_reference() {
    let (b, g, p) = (1usize, 2usize, 3usize);
    let (v, vr) = norm_rows(vec![0.5, -0.2, 0.8, 0.1, 0.9, -0.3], g, p);
    let (vt, vtr) = norm_rows(vec![0.4, -0.1, 0.7, 0.2, 0.8, -0.2], g, p);
    let tau_w_vals = vec![0.2f32, 0.7, 0.6, 0.2]; // [g, g]
    let tau_c_vals = vec![0.2f32, 0.65, 0.55, 0.2];
    let v3 = v.reshape(&[b, g, p]);
    let vt3 = vt.reshape(&[b, g, p]);
    let tau_w = Tensor::from_vec(tau_w_vals.clone(), &[b, g, g]);
    let tau_c = Tensor::from_vec(tau_c_vals.clone(), &[b, g, g]);
    let loss = intra_prototype_loss(&v3, &vt3, &tau_w, &tau_c).item();

    // Scalar re-computation of Eq. 4.
    let s = |k: usize, j: usize| dot(&vr[k], &vr[j]) / tau_w_vals[k * g + j];
    let st = |k: usize, j: usize| dot(&vr[k], &vtr[j]) / tau_c_vals[k * g + j];
    let mut expected = 0f32;
    for k in 0..g {
        let mut denom = 0f32;
        for j in 0..g {
            if j != k {
                denom += s(k, j).exp();
            }
            denom += st(k, j).exp();
        }
        expected += -(st(k, k).exp() / denom).ln();
    }
    assert!((loss - expected).abs() < 1e-4, "{loss} vs {expected}");
}

/// Eq. 7–8 by hand for B = 2.
#[test]
fn eq7_8_series_image_naive_scalar_reference() {
    let tau = 0.25f32;
    let (u, ur) = norm_rows(vec![0.9, 0.1, -0.3, 0.8], 2, 2);
    let (v, vr) = norm_rows(vec![1.0, 0.0, 0.1, 0.9], 2, 2);
    let loss = series_image_naive(&u, &v, tau).item();

    let mut expected = 0f32;
    for i in 0..2 {
        // ℓ^{I-S}: u_i anchored against all v_j.
        let denom_is: f32 = (0..2).map(|j| (dot(&ur[i], &vr[j]) / tau).exp()).sum();
        expected += -((dot(&ur[i], &vr[i]) / tau).exp() / denom_is).ln();
        // ℓ^{S-I}: v_i anchored against all u_j.
        let denom_si: f32 = (0..2).map(|j| (dot(&vr[i], &ur[j]) / tau).exp()).sum();
        expected += -((dot(&vr[i], &ur[i]) / tau).exp() / denom_si).ln();
    }
    expected /= 4.0; // 1/(2B)
    assert!((loss - expected).abs() < 1e-4, "{loss} vs {expected}");
}

/// Eq. 9 by hand: slerp coefficients.
#[test]
fn eq9_geodesic_mixup_scalar_reference() {
    let (u, ur) = norm_rows(vec![1.0, 0.0], 1, 2);
    let (v, vr) = norm_rows(vec![0.6, 0.8], 1, 2);
    let lambda = 0.3f32;
    let m = geodesic_mixup(&u, &v, &[lambda]).to_vec();

    let theta = dot(&ur[0], &vr[0]).clamp(-1.0, 1.0).acos();
    let cu = (lambda * theta).sin() / theta.sin();
    let cv = ((1.0 - lambda) * theta).sin() / theta.sin();
    let expected = [cu * ur[0][0] + cv * vr[0][0], cu * ur[0][1] + cv * vr[0][1]];
    for (a, e) in m.iter().zip(expected) {
        assert!((a - e).abs() < 1e-4, "{a} vs {e}");
    }
    // And the result is unit-norm, as Eq. 9 guarantees.
    let n = (m[0] * m[0] + m[1] * m[1]).sqrt();
    assert!((n - 1.0).abs() < 1e-5);
}

/// Eq. 10–11 by hand for B = 2.
#[test]
fn eq10_11_mixup_loss_scalar_reference() {
    let tau = 0.25f32;
    let (u, ur) = norm_rows(vec![0.9, 0.1, -0.3, 0.8], 2, 2);
    let (v, vr) = norm_rows(vec![1.0, 0.0, 0.1, 0.9], 2, 2);
    let lambdas = [0.2f32, 0.7];
    let mixed = geodesic_mixup(&u, &v, &lambdas);
    let mr: Vec<Vec<f32>> = {
        let mv = mixed.to_vec();
        (0..2).map(|i| mv[i * 2..(i + 1) * 2].to_vec()).collect()
    };
    let loss = series_image_mixup(&u, &v, &mixed, tau).item();

    let mut expected = 0f32;
    for i in 0..2 {
        let pos = (dot(&ur[i], &vr[i]) / tau).exp();
        let denom_im: f32 = (0..2).map(|j| (dot(&ur[i], &mr[j]) / tau).exp()).sum();
        expected += -(pos / denom_im).ln();
        let denom_sm: f32 = (0..2).map(|j| (dot(&vr[i], &mr[j]) / tau).exp()).sum();
        expected += -(pos / denom_sm).ln();
    }
    expected /= 4.0;
    assert!((loss - expected).abs() < 1e-4, "{loss} vs {expected}");
}

/// Eq. 6 and Eq. 12: the scalar combination weights.
#[test]
fn eq6_12_combination_weights() {
    let a = Tensor::scalar(1.0);
    let b = Tensor::scalar(3.0);
    // Eq. 6: (α·inter + (1-α)·intra) / 2.
    let alpha = 0.7;
    let expected6 = 0.5 * (alpha * 1.0 + (1.0 - alpha) * 3.0);
    assert!((proto_loss(&a, &b, alpha).item() - expected6).abs() < 1e-6);
    // Eq. 12: β·naive + (1-β)·mix.
    let beta = 0.9;
    let expected12 = beta * 1.0 + (1.0 - beta) * 3.0;
    assert!((series_image_loss(&a, &b, beta).item() - expected12).abs() < 1e-6);
}
