//! Determinism pins for pre-training across the lock-free/persistent-pool
//! execution model:
//!
//! * the serial path must be **bit-identical to the pre-refactor serial
//!   trajectory** (golden digests captured with `examples/serial_golden.rs`
//!   before the hot-path rework — arena allocation, SIMD kernels, and the
//!   `Storage::Hot` split must all be invisible to the numbers);
//! * the 4-worker path must be bit-identical run-to-run with the same seed
//!   (the persistent pool pins micro-batch slots, so thread scheduling can
//!   never reorder the all-reduce);
//! * both paths are pinned to golden digests so any future drift names the
//!   exact epoch where it appeared.
//!
//! The digests are stable across debug/release and SIMD levels because every
//! kernel is bitwise-equal to its scalar oracle (see
//! `crates/tensor/tests/simd_oracle.rs`) and rustc does not relax IEEE
//! semantics at any opt-level.

use aimts::{AimTs, AimTsConfig, Executor, PretrainConfig};
use aimts_data::archives::monash_like_pool;
use aimts_nn::Module;

/// FNV-1a over the bit patterns of every parameter, in traversal order —
/// the same digest `examples/serial_golden.rs` prints.
fn param_fnv(model: &AimTs) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for p in model.parameters() {
        for b in p.data_bits() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// The exact workload of `examples/serial_golden.rs`, at a given worker
/// count: tiny config, init seed 3407, 2 epochs over `monash_like_pool(4, 0)`.
fn run(workers: usize) -> (u32, u64, Vec<u32>) {
    run_ex(workers, Executor::Eager)
}

fn run_ex(workers: usize, executor: Executor) -> (u32, u64, Vec<u32>) {
    let pool = monash_like_pool(4, 0);
    let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
    let report = model
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs: 2,
                batch_size: 4,
                workers,
                executor,
                ..Default::default()
            },
        )
        .expect("pretrain");
    (
        report.final_loss.to_bits(),
        param_fnv(&model),
        report.epoch_losses.iter().map(|l| l.to_bits()).collect(),
    )
}

/// Golden digests captured on the pre-refactor serial path. Any change here
/// is a numerics regression, not an update to rubber-stamp.
const SERIAL_LOSS_BITS: u32 = 0x4030286b;
const SERIAL_PARAM_FNV: u64 = 0xba400810daf6cf14;
const SERIAL_EPOCH_BITS: [u32; 2] = [0x403b13c6, 0x4030286b];

/// Golden digests for the 4-worker trajectory (one Adam step per round of 4
/// averaged micro-batches — a *different* trajectory from serial by design,
/// but equally pinned).
const PAR4_LOSS_BITS: u32 = 0x40298d7c;
const PAR4_PARAM_FNV: u64 = 0x6f82a5093b8e0b1b;
const PAR4_EPOCH_BITS: [u32; 2] = [0x40431468, 0x40298d7c];

#[test]
fn serial_is_bit_identical_to_pre_refactor_golden() {
    let (loss, fnv, epochs) = run(1);
    assert_eq!(
        loss, SERIAL_LOSS_BITS,
        "serial final loss drifted: got 0x{loss:08x}"
    );
    assert_eq!(
        fnv, SERIAL_PARAM_FNV,
        "serial parameters drifted: got 0x{fnv:016x}"
    );
    assert_eq!(epochs, SERIAL_EPOCH_BITS, "serial epoch losses drifted");
}

#[test]
fn four_worker_run_matches_golden() {
    let (loss, fnv, epochs) = run(4);
    assert_eq!(
        loss, PAR4_LOSS_BITS,
        "4-worker final loss drifted: got 0x{loss:08x}"
    );
    assert_eq!(
        fnv, PAR4_PARAM_FNV,
        "4-worker parameters drifted: got 0x{fnv:016x}"
    );
    assert_eq!(epochs, PAR4_EPOCH_BITS, "4-worker epoch losses drifted");
}

/// The compiled executor replays traced plans instead of rebuilding the
/// autograd graph each step — and must land on the *pre-refactor* golden
/// digests, bit for bit. Same constants as the eager test: the plan is a
/// replay of the eager computation, not an approximation of it.
#[test]
fn compiled_serial_matches_pre_refactor_golden() {
    let (loss, fnv, epochs) = run_ex(1, Executor::Compiled);
    assert_eq!(
        loss, SERIAL_LOSS_BITS,
        "compiled serial final loss drifted from eager golden: got 0x{loss:08x}"
    );
    assert_eq!(
        fnv, SERIAL_PARAM_FNV,
        "compiled serial parameters drifted from eager golden: got 0x{fnv:016x}"
    );
    assert_eq!(
        epochs, SERIAL_EPOCH_BITS,
        "compiled serial epoch losses drifted from eager golden"
    );
}

/// Compiled replay inside the 4-worker persistent pool: each worker traces
/// once on its own thread and replays thereafter; the all-reduce sees the
/// same bits as eager, so the eager 4-worker goldens hold unchanged.
#[test]
fn compiled_four_worker_matches_golden() {
    let (loss, fnv, epochs) = run_ex(4, Executor::Compiled);
    assert_eq!(
        loss, PAR4_LOSS_BITS,
        "compiled 4-worker final loss drifted from eager golden: got 0x{loss:08x}"
    );
    assert_eq!(
        fnv, PAR4_PARAM_FNV,
        "compiled 4-worker parameters drifted from eager golden: got 0x{fnv:016x}"
    );
    assert_eq!(
        epochs, PAR4_EPOCH_BITS,
        "compiled 4-worker epoch losses drifted from eager golden"
    );
}

#[test]
fn same_seed_four_worker_runs_are_bit_identical() {
    let a = run(4);
    let b = run(4);
    assert_eq!(
        a, b,
        "same-seed 4-worker pre-training must be bit-identical run-to-run"
    );
}
