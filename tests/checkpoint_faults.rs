//! Crash/corruption fault-injection suite for the binary pre-training
//! checkpoint format.
//!
//! Builds one *valid* checkpoint, then systematically damages it — truncating
//! at (and just before) every section boundary, and flipping a byte in every
//! region of the file — asserting that every single load returns a typed
//! `Err` naming what failed: zero panics, zero silent successes.

use std::panic::{catch_unwind, AssertUnwindSafe};

use aimts::{build_pretrain_checkpoint, decode_pretrain_checkpoint, PretrainState};
use aimts::{AimTs, AimTsConfig};
use aimts_nn::{layout, sections, Adam, Checkpoint, CheckpointError, StepLr, HEADER_LEN};

/// A realistic 4-section pre-training checkpoint, serialized.
fn valid_checkpoint_bytes() -> Vec<u8> {
    let model = AimTs::new(AimTsConfig::tiny(), 5);
    let params: Vec<_> = model
        .named_parameters()
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let adam = Adam::new(params, 1e-3).export_state();
    let sched = StepLr::new(1e-3, 2, 0.5).export_state();
    let train = PretrainState {
        steps: 40,
        epochs_done: 2,
        base_seed: 3407,
        rng_state: 0x1234_5678_9ABC_DEF0,
        micro_counter: 16,
        workers: 1,
        epoch_losses: vec![2.5, 1.75],
        last_proto: 1.0,
        last_si: 0.75,
    };
    build_pretrain_checkpoint(&model, &adam, &sched, &train).to_bytes()
}

/// Parse + fully decode, catching panics so a faulty code path reads as a
/// test failure message instead of a crashed harness.
fn try_full_load(bytes: &[u8]) -> Result<Result<(), CheckpointError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let ck = Checkpoint::from_bytes(bytes)?;
        decode_pretrain_checkpoint(&ck)?;
        Ok(())
    }))
    .map_err(|_| "load panicked".to_string())
}

/// Every corrupted/truncated load must return `Err` without panicking.
fn assert_rejects(bytes: &[u8], what: &str) -> CheckpointError {
    match try_full_load(bytes) {
        Err(panic_msg) => panic!("{what}: {panic_msg}"),
        Ok(Ok(())) => panic!("{what}: corrupted checkpoint loaded silently"),
        Ok(Err(e)) => e,
    }
}

#[test]
fn pristine_checkpoint_loads() {
    let bytes = valid_checkpoint_bytes();
    assert!(try_full_load(&bytes).unwrap().is_ok());
    let (header_end, spans) = layout(&bytes).unwrap();
    assert_eq!(header_end, HEADER_LEN);
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            sections::PARAMS,
            sections::ADAM,
            sections::SCHEDULER,
            sections::TRAIN
        ]
    );
    assert_eq!(spans.last().unwrap().end, bytes.len());
}

#[test]
fn truncation_at_every_section_boundary_is_detected() {
    let bytes = valid_checkpoint_bytes();
    let (header_end, spans) = layout(&bytes).unwrap();

    // Every structurally interesting cut point: mid-header, the header
    // boundary, each section's record start / payload start / end, and one
    // byte short of each. Only the full length is a valid file.
    let mut cuts: Vec<usize> = vec![0, 1, 7, 8, header_end / 2, header_end - 1, header_end];
    for span in &spans {
        cuts.extend([
            span.start,
            span.start + 2,
            span.payload_start.saturating_sub(1),
            span.payload_start,
            span.payload_start + (span.end - span.payload_start) / 2,
            span.end - 1,
        ]);
    }
    // All boundaries except the final `end` (== full file) truncate data.
    for span in &spans[..spans.len() - 1] {
        cuts.push(span.end);
    }

    for cut in cuts {
        assert!(cut < bytes.len(), "cut {cut} is not a truncation");
        let err = assert_rejects(&bytes[..cut], &format!("truncated to {cut} bytes"));
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::HeaderCorrupt
                    | CheckpointError::BadMagic
                    | CheckpointError::Malformed { .. }
            ),
            "truncation to {cut} bytes gave unexpected error: {err}"
        );
    }
}

#[test]
fn truncated_section_errors_name_the_victim() {
    let bytes = valid_checkpoint_bytes();
    let (_, spans) = layout(&bytes).unwrap();
    for span in &spans {
        // Cut in the middle of this section's payload: the parser knows
        // which section it was reading, so the error must say so.
        let cut = span.payload_start + (span.end - span.payload_start) / 2;
        let err = assert_rejects(&bytes[..cut], &format!("payload cut in `{}`", span.name));
        let msg = err.to_string();
        assert!(
            msg.contains(&span.name),
            "truncation inside `{}` produced an error that does not name it: {msg}",
            span.name
        );
    }
}

#[test]
fn single_byte_flip_in_every_section_is_detected_and_named() {
    let bytes = valid_checkpoint_bytes();
    let (_, spans) = layout(&bytes).unwrap();

    for span in &spans {
        // Flip a byte at several positions across the payload, plus one in
        // the section record header (name/length fields) — the section CRC
        // covers all of it.
        let payload_len = span.end - span.payload_start;
        let mut positions = vec![
            span.start,             // name_len field
            span.payload_start - 4, // crc field itself
            span.payload_start,     // first payload byte
            span.payload_start + payload_len / 2,
            span.end - 1, // last payload byte
        ];
        positions.dedup();
        for pos in positions {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            let err = assert_rejects(
                &corrupt,
                &format!("bit flip at byte {pos} in section `{}`", span.name),
            );
            match &err {
                CheckpointError::ChecksumMismatch { section } => {
                    assert_eq!(
                        section, &span.name,
                        "flip at {pos} blamed the wrong section"
                    );
                }
                // A flipped length field can also surface as a truncation /
                // malformed record; the message must still name the section
                // or its position so the operator knows where to look.
                other => {
                    let msg = other.to_string();
                    assert!(
                        msg.contains(&span.name) || msg.contains("section"),
                        "flip at {pos} in `{}` gave an unlocated error: {msg}",
                        span.name
                    );
                }
            }
        }
    }
}

#[test]
fn header_corruption_is_detected() {
    let bytes = valid_checkpoint_bytes();

    // Magic bytes.
    for pos in 0..8 {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xFF;
        let err = assert_rejects(&corrupt, &format!("magic byte {pos} flipped"));
        assert!(matches!(err, CheckpointError::BadMagic), "got: {err}");
    }
    // Version field.
    let mut wrong_version = bytes.clone();
    wrong_version[8] ^= 0x02;
    assert!(matches!(
        assert_rejects(&wrong_version, "version flipped"),
        CheckpointError::UnsupportedVersion { .. }
    ));
    // Every remaining header byte (counters, section count, header CRC) is
    // covered by the header checksum.
    for pos in 12..HEADER_LEN {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        let err = assert_rejects(&corrupt, &format!("header byte {pos} flipped"));
        assert!(
            matches!(
                err,
                CheckpointError::HeaderCorrupt | CheckpointError::Truncated { .. }
            ),
            "header byte {pos}: {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = valid_checkpoint_bytes();
    bytes.push(0u8);
    let err = assert_rejects(&bytes, "one trailing byte");
    assert!(
        matches!(err, CheckpointError::Malformed { .. }),
        "got {err}"
    );
}

#[test]
fn on_disk_corruption_is_rejected_by_load() {
    let dir = std::env::temp_dir().join("aimts_fault_on_disk");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.aimts");

    let bytes = valid_checkpoint_bytes();
    let (_, spans) = layout(&bytes).unwrap();
    let mut corrupt = bytes.clone();
    corrupt[spans[0].payload_start + 3] ^= 0x10;
    std::fs::write(&path, &corrupt).unwrap();
    match Checkpoint::load(&path) {
        Err(CheckpointError::ChecksumMismatch { section }) => {
            assert_eq!(section, sections::PARAMS)
        }
        other => panic!("expected params checksum failure, got {other:?}"),
    }

    // A missing file is a typed Io error, not a panic.
    assert!(matches!(
        Checkpoint::load(&dir.join("nope.aimts")),
        Err(CheckpointError::Io(_))
    ));
}
