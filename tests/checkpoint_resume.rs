//! Bit-exact resume integration tests: pre-training N epochs straight must
//! equal pre-training N/2 epochs, "crashing", and resuming from the periodic
//! checkpoint for the remaining N/2 — identical parameters and identical
//! per-epoch loss curves.

use std::path::PathBuf;

use aimts::{checkpoint_path, AimTs, AimTsConfig, CheckpointPolicy, Executor, PretrainConfig};
use aimts_data::archives::monash_like_pool;
use aimts_data::MultiSeries;

const EPOCHS: usize = 4;
const HALF: usize = EPOCHS / 2;

fn tiny_pool() -> Vec<MultiSeries> {
    monash_like_pool(2, 0).into_iter().take(12).collect()
}

fn pcfg(workers: usize, executor: Executor, checkpoint: CheckpointPolicy) -> PretrainConfig {
    PretrainConfig {
        epochs: EPOCHS,
        batch_size: 4,
        seed: 3407,
        workers,
        executor,
        checkpoint,
        ..PretrainConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aimts_resume_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Straight N-epoch run vs N/2 → kill → resume N/2, compared by `check`.
fn run_interrupted_vs_straight(
    workers: usize,
    executor: Executor,
    tag: &str,
    check: impl Fn(&[f32], &[f32], &[f32], &[f32]),
) {
    let pool = tiny_pool();
    let dir = tmp_dir(tag);

    // Reference: one uninterrupted run, no checkpointing at all.
    let mut straight = AimTs::new(AimTsConfig::tiny(), 1);
    let straight_report = straight
        .pretrain(&pool, &pcfg(workers, executor, CheckpointPolicy::default()))
        .unwrap();

    // Interrupted run: stop ("crash") after HALF epochs...
    let mut victim = AimTs::new(AimTsConfig::tiny(), 1);
    let victim_report = victim
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs: HALF,
                checkpoint: CheckpointPolicy {
                    dir: Some(dir.clone()),
                    every: 1,
                    keep_last: 0,
                    resume_from: None,
                },
                ..pcfg(workers, executor, CheckpointPolicy::default())
            },
        )
        .unwrap();
    let ckpt = checkpoint_path(&dir, HALF);
    assert!(ckpt.exists(), "periodic checkpoint missing at {ckpt:?}");

    // ...then resume in a FRESH process stand-in: a model with a different
    // init seed, whose weights/optimizer/RNG all come from the checkpoint.
    let mut resumed = AimTs::new(AimTsConfig::tiny(), 999);
    let resumed_report = resumed
        .pretrain(
            &pool,
            &pcfg(
                workers,
                executor,
                CheckpointPolicy {
                    resume_from: Some(ckpt),
                    ..CheckpointPolicy::default()
                },
            ),
        )
        .unwrap();

    // The loss history carries across the crash: first HALF epochs of the
    // resumed curve are the victim's, and the report covers all EPOCHS.
    assert_eq!(victim_report.epoch_losses.len(), HALF);
    assert_eq!(straight_report.epoch_losses.len(), EPOCHS);
    assert_eq!(resumed_report.epoch_losses.len(), EPOCHS);
    assert_eq!(
        resumed_report.epoch_losses[..HALF],
        victim_report.epoch_losses[..],
        "resume must preserve the pre-crash loss history verbatim"
    );

    check(
        &straight.flat_parameters(),
        &resumed.flat_parameters(),
        &straight_report.epoch_losses,
        &resumed_report.epoch_losses,
    );
}

#[test]
fn serial_resume_is_bit_exact() {
    run_interrupted_vs_straight(
        1,
        Executor::Eager,
        "serial",
        |p_straight, p_resumed, l_straight, l_resumed| {
            assert_eq!(
                l_straight, l_resumed,
                "serial loss curves must match bit-for-bit"
            );
            assert_eq!(p_straight.len(), p_resumed.len());
            let diverged = p_straight
                .iter()
                .zip(p_resumed)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert_eq!(
                diverged,
                0,
                "{diverged}/{} parameters differ after serial resume",
                p_straight.len()
            );
        },
    );
}

/// The persistent worker pool pins micro-batch slot i to worker thread i for
/// the whole run, and the SIMD all-reduce is bitwise-deterministic, so the
/// 4-worker resume is held to the same bit-exactness bar as serial — the
/// resumed process spawns a fresh pool yet must replay the identical
/// trajectory.
#[test]
fn parallel_resume_is_bit_exact() {
    run_interrupted_vs_straight(
        4,
        Executor::Eager,
        "parallel",
        |p_straight, p_resumed, l_straight, l_resumed| {
            assert_eq!(
                l_straight, l_resumed,
                "parallel loss curves must match bit-for-bit across resume"
            );
            assert_eq!(p_straight.len(), p_resumed.len());
            let diverged = p_straight
                .iter()
                .zip(p_resumed)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert_eq!(
                diverged,
                0,
                "{diverged}/{} parameters differ after parallel resume",
                p_straight.len()
            );
        },
    );
}

/// Checkpoints carry no executor tag — compiled replay is bitwise the eager
/// computation, so a run interrupted and resumed entirely under
/// `Executor::Compiled` must land on the exact same parameters and loss
/// curve as the straight compiled run (which itself matches eager, per the
/// determinism goldens).
#[test]
fn compiled_serial_resume_is_bit_exact() {
    run_interrupted_vs_straight(
        1,
        Executor::Compiled,
        "compiled",
        |p_straight, p_resumed, l_straight, l_resumed| {
            assert_eq!(
                l_straight, l_resumed,
                "compiled loss curves must match bit-for-bit across resume"
            );
            assert_eq!(p_straight.len(), p_resumed.len());
            let diverged = p_straight
                .iter()
                .zip(p_resumed)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            assert_eq!(
                diverged,
                0,
                "{diverged}/{} parameters differ after compiled resume",
                p_straight.len()
            );
        },
    );
}

/// A plan traced under one worker topology refuses to replay under another:
/// the reduction order it baked in would no longer describe the run.
#[test]
fn compiled_plan_rejects_foreign_topology() {
    use aimts_tensor::{plan, Tensor};
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    let traced =
        plan::trace(std::slice::from_ref(&x), 4, || vec![x.square().sum_all()]).expect("trace");
    assert!(traced.check_topology(4).is_ok());
    let err = traced
        .check_topology(1)
        .expect_err("topology must be checked");
    let msg = format!("{err}");
    assert!(
        msg.contains('4') && msg.contains('1'),
        "topology error should name both topologies: {msg}"
    );
}

#[test]
fn resume_rejects_mismatched_seed_and_topology() {
    let pool = tiny_pool();
    let dir = tmp_dir("mismatch");
    let mut model = AimTs::new(AimTsConfig::tiny(), 1);
    model
        .pretrain(
            &pool,
            &PretrainConfig {
                epochs: 1,
                checkpoint: CheckpointPolicy {
                    dir: Some(dir.clone()),
                    ..CheckpointPolicy::default()
                },
                ..pcfg(1, Executor::Eager, CheckpointPolicy::default())
            },
        )
        .unwrap();
    let ckpt = checkpoint_path(&dir, 1);
    let resume = |seed: u64, workers: usize| {
        let mut m = AimTs::new(AimTsConfig::tiny(), 1);
        m.pretrain(
            &pool,
            &PretrainConfig {
                seed,
                ..pcfg(
                    workers,
                    Executor::Eager,
                    CheckpointPolicy {
                        resume_from: Some(ckpt.clone()),
                        ..CheckpointPolicy::default()
                    },
                )
            },
        )
    };
    // Wrong base seed: the RNG streams would not line up.
    assert!(resume(9999, 1).is_err());
    // Wrong worker topology: gradient-round boundaries would differ.
    assert!(resume(3407, 4).is_err());
    // Matching run is accepted.
    assert!(resume(3407, 1).is_ok());
}

#[test]
fn retention_keeps_only_last_k_during_training() {
    let pool = tiny_pool();
    let dir = tmp_dir("retention");
    let mut model = AimTs::new(AimTsConfig::tiny(), 1);
    model
        .pretrain(
            &pool,
            &PretrainConfig {
                checkpoint: CheckpointPolicy {
                    dir: Some(dir.clone()),
                    every: 1,
                    keep_last: 2,
                    resume_from: None,
                },
                ..pcfg(1, Executor::Eager, CheckpointPolicy::default())
            },
        )
        .unwrap();
    let kept = aimts::list_checkpoints(&dir).unwrap();
    assert_eq!(
        kept,
        vec![
            checkpoint_path(&dir, EPOCHS - 1),
            checkpoint_path(&dir, EPOCHS)
        ]
    );
}
