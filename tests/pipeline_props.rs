//! Cross-crate property tests: invariants that must hold when the data,
//! augmentation, imaging and model layers are composed.

use aimts_repro::aimts::{AimTs, AimTsConfig};
use aimts_repro::aimts_augment::default_bank;
use aimts_repro::aimts_data::generator::{DatasetSpec, PatternFamily};
use aimts_repro::aimts_data::preprocess::{resample_sample, z_normalize_sample};
use aimts_repro::aimts_imaging::{render_sample, ImageConfig};
use aimts_repro::aimts_tensor::no_grad;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family() -> impl Strategy<Value = PatternFamily> {
    prop::sample::select(PatternFamily::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every family × every augmentation → finite, length-preserving views.
    #[test]
    fn any_generated_sample_augments_cleanly(fam in family(), seed in 0u64..500, len in 24usize..128) {
        let spec = DatasetSpec {
            length: len,
            train_per_class: 1,
            test_per_class: 1,
            ..DatasetSpec::new("p", fam, seed)
        };
        let ds = spec.generate();
        let sample = &ds.train.samples[0];
        let mut rng = StdRng::seed_from_u64(seed);
        for aug in default_bank() {
            let view = aug.apply_multivariate(&sample.vars, &mut rng);
            prop_assert_eq!(view.len(), sample.n_vars());
            for v in &view {
                prop_assert_eq!(v.len(), len);
                prop_assert!(v.iter().all(|x| x.is_finite()));
            }
        }
    }

    /// Every generated sample renders to a finite, standardized image.
    #[test]
    fn any_generated_sample_renders(fam in family(), seed in 0u64..500) {
        let spec = DatasetSpec {
            n_vars: 1 + (seed as usize % 3),
            train_per_class: 1,
            test_per_class: 1,
            ..DatasetSpec::new("p", fam, seed)
        };
        let ds = spec.generate();
        let img = render_sample(&ds.train.samples[0].vars, &ImageConfig::small());
        prop_assert!(img.data.iter().all(|x| x.is_finite()));
        for m in img.channel_means() {
            prop_assert!(m.abs() < 1e-3);
        }
    }

    /// Encoding is invariant to the sample's storage (clone) and
    /// deterministic under no_grad.
    #[test]
    fn encoding_is_pure(fam in family(), seed in 0u64..200) {
        let spec = DatasetSpec {
            train_per_class: 1,
            test_per_class: 1,
            ..DatasetSpec::new("p", fam, seed)
        };
        let ds = spec.generate();
        let model = AimTs::new(AimTsConfig::tiny(), 3407);
        let s = &ds.train.samples[0].vars;
        let a = no_grad(|| model.encode(&[s])).to_vec();
        let b = no_grad(|| model.encode(&[&s.clone()])).to_vec();
        prop_assert_eq!(a, b);
    }

    /// Resample + z-normalize leaves samples with ~zero mean, ~unit std.
    #[test]
    fn preprocessing_normalizes(fam in family(), seed in 0u64..200, target in 16usize..100) {
        let spec = DatasetSpec {
            train_per_class: 1,
            test_per_class: 1,
            ..DatasetSpec::new("p", fam, seed)
        };
        let ds = spec.generate();
        let mut vars = resample_sample(&ds.train.samples[0].vars, target);
        z_normalize_sample(&mut vars);
        for v in &vars {
            prop_assert_eq!(v.len(), target);
            let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
        }
    }
}
