//! Integration tests for every baseline: end-to-end training + evaluation
//! on small but genuinely separable datasets, and paradigm-level sanity
//! properties.

use aimts_repro::aimts::FineTuneConfig;
use aimts_repro::aimts_baselines::foundation::FoundationConfig;
use aimts_repro::aimts_baselines::{
    BaselineConfig, ContrastiveBaseline, FcnClassifier, Method, Metric, MomentLike, OneNn,
    RocketClassifier, UnitsLike,
};
use aimts_repro::aimts_data::archives::{monash_like_pool, ucr_like_archive};
use aimts_repro::aimts_data::generator::{DatasetSpec, PatternFamily};
use aimts_repro::aimts_data::Dataset;

fn easy(seed: u64) -> Dataset {
    DatasetSpec {
        n_classes: 2,
        train_per_class: 12,
        test_per_class: 15,
        noise: 0.05,
        length: 64,
        ..DatasetSpec::new("easy", PatternFamily::SineFreq, seed)
    }
    .generate()
}

#[test]
fn every_contrastive_method_full_cycle() {
    let ds = easy(1);
    let pool = ds.unlabeled_train();
    for method in [Method::Ts2Vec, Method::TsTcc, Method::Tnc, Method::TLoss] {
        let mut b = ContrastiveBaseline::new(method, BaselineConfig::tiny(), 2);
        let loss = b.pretrain(&pool, 2, 8, 5e-3, 2);
        assert!(loss.is_finite(), "{} pretrain diverged", method.name());
        let tuned = b.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let acc = tuned.evaluate(&ds.test);
        assert!(
            acc > 0.5,
            "{} should beat chance on easy data, got {acc}",
            method.name()
        );
    }
}

#[test]
fn rocket_beats_chance_and_is_deterministic() {
    let ds = easy(3);
    let mut a = RocketClassifier::new(150, ds.series_len(), 9);
    a.fit(&ds);
    let acc_a = a.evaluate(&ds.test);
    assert!(
        acc_a > 0.8,
        "rocket on easy sine-frequency data, got {acc_a}"
    );
    let mut b = RocketClassifier::new(150, ds.series_len(), 9);
    b.fit(&ds);
    assert_eq!(a.predict(&ds.test), b.predict(&ds.test));
}

#[test]
fn one_nn_both_metrics() {
    let ds = easy(4);
    for metric in [Metric::Euclidean, Metric::Dtw { band: 0.1 }] {
        let acc = OneNn::fit(&ds, metric).evaluate(&ds.test);
        assert!(acc > 0.7, "{metric:?} got {acc}");
    }
}

#[test]
fn fcn_supervised_learns() {
    let ds = easy(5);
    let mut clf = FcnClassifier::new(1, 8, 2, 0);
    clf.fit(&ds, 15, 8, 1e-2, 0);
    assert!(clf.evaluate(&ds.test) > 0.8);
}

#[test]
fn moment_like_full_cycle() {
    let pool: Vec<_> = monash_like_pool(2, 0).into_iter().take(16).collect();
    let mut m = MomentLike::new(FoundationConfig::tiny(), 0);
    let mse = m.pretrain(&pool, 2, 8, 5e-3, 0);
    assert!(mse.is_finite() && mse >= 0.0);
    let ds = easy(6);
    let acc = m
        .fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 10,
                ..Default::default()
            },
        )
        .evaluate(&ds.test);
    assert!(acc > 0.5, "moment-like fine-tune got {acc}");
}

#[test]
fn units_like_full_cycle() {
    let sources = ucr_like_archive(2, 77);
    let refs: Vec<&Dataset> = sources.iter().collect();
    let mut u = UnitsLike::new(FoundationConfig::tiny(), 0);
    let ce = u.pretrain(&refs, 2, 8, 5e-3, 0);
    assert!(ce.is_finite());
    let ds = easy(7);
    let acc = u
        .fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 10,
                ..Default::default()
            },
        )
        .evaluate(&ds.test);
    assert!(acc > 0.5, "units-like fine-tune got {acc}");
}

#[test]
fn baseline_config_mirrors_aimts_config() {
    let acfg = aimts_repro::aimts::AimTsConfig::tiny();
    let bcfg = BaselineConfig::from_aimts(&acfg);
    assert_eq!(bcfg.hidden, acfg.hidden);
    assert_eq!(bcfg.repr_dim, acfg.repr_dim);
    assert_eq!(bcfg.dilations, acfg.dilations);
}
