//! Serving conformance suite: predictions served through `aimts-serve`
//! must be **bitwise-identical** to offline [`FineTuned::predict`] — for
//! any micro-batch split, any arrival order, and both executors.
//!
//! Why bitwise identity is even possible: inference z-normalizes each
//! sample independently, the encoder/head path has no cross-sample
//! statistics (no BatchNorm), and every reduction uses a fixed
//! accumulation order — so a sample's logits do not depend on which batch
//! it rode in on. The micro-batcher may therefore split the stream
//! anywhere without changing a single answer.
//!
//! The offline predictions themselves are pinned to a golden FNV-1a
//! digest, so drift in training *or* inference names itself here.

use std::sync::OnceLock;

use aimts::{AimTs, AimTsConfig, Executor, FineTuneConfig, FineTuned};
use aimts_data::{special, Dataset};
use aimts_serve::{BatchPolicy, ModelRegistry, Server};

/// FNV-1a over predicted class indices, in test-set order.
fn predictions_fnv(preds: &[usize]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in preds {
        for b in (p as u64).to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// Golden digest of the fixture's offline test-set predictions. Captured
/// from the deterministic run below; any change to training or the
/// inference path that moves a single label shows up here first.
const GOLDEN_PREDICTIONS_FNV: u64 = 0xd040_5ae6_853a_08c4;

/// One deterministic tiny model + dataset shared by every test in the
/// file (fine-tuning is the expensive part; do it once).
fn fixture() -> &'static (Dataset, FineTuned, Vec<usize>) {
    static FIX: OnceLock<(Dataset, FineTuned, Vec<usize>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = special::ecg200_like(7);
        let model = AimTs::new(AimTsConfig::tiny(), 3407);
        let tuned = model.fine_tune(
            &ds,
            &FineTuneConfig {
                epochs: 2,
                batch_size: 8,
                ..FineTuneConfig::default()
            },
        );
        let offline = tuned.predict(&ds.test);
        (ds, tuned, offline)
    })
}

/// Deterministic pseudo-shuffle of `0..n` (LCG; no RNG dependency).
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Serve the whole test split through `server` in `order`, returning
/// predictions re-assembled into test-set order.
fn serve_all(server: &Server, ds: &Dataset, order: &[usize]) -> Vec<usize> {
    let mut pending = Vec::with_capacity(order.len());
    for &i in order {
        let p = server
            .submit(ds.test.samples[i].vars.clone())
            .expect("submit");
        pending.push((i, p));
    }
    let mut served = vec![usize::MAX; order.len()];
    for (i, p) in pending {
        served[i] = p.wait().expect("response").class;
    }
    served
}

#[test]
fn offline_predictions_match_golden_digest() {
    let (ds, _, offline) = fixture();
    assert_eq!(offline.len(), ds.test.len());
    let digest = predictions_fnv(offline);
    assert_eq!(
        digest, GOLDEN_PREDICTIONS_FNV,
        "offline predictions drifted: digest {digest:#018x} (update the golden only for an intended change)"
    );
}

#[test]
fn served_matches_offline_for_any_batch_split_and_order() {
    let (ds, tuned, offline) = fixture();
    for executor in [Executor::Eager, Executor::Compiled] {
        for (max_batch, seed) in [(1usize, 11u64), (3, 22), (64, 33)] {
            let registry = ModelRegistry::from_tuned(tuned, executor, "fixture");
            let server = Server::start(
                registry,
                BatchPolicy {
                    max_batch,
                    ..BatchPolicy::default()
                },
            );
            let order = shuffled_indices(ds.test.len(), seed);
            let served = serve_all(&server, ds, &order);
            server.shutdown();
            assert_eq!(
                &served, offline,
                "served != offline for executor {executor:?}, max_batch {max_batch}"
            );
            assert_eq!(predictions_fnv(&served), predictions_fnv(offline));
        }
    }
}

#[test]
fn bundle_round_trip_serves_identical_predictions() {
    let (ds, tuned, offline) = fixture();
    let path = std::env::temp_dir().join("aimts_serve_conformance_bundle.aimts");
    tuned.save_bundle(&path).expect("save bundle");
    for executor in [Executor::Eager, Executor::Compiled] {
        let registry = ModelRegistry::from_bundle(&path, executor).expect("load bundle");
        assert_eq!(registry.generation(), 1);
        let server = Server::start(registry, BatchPolicy::default());
        let order = shuffled_indices(ds.test.len(), 44);
        let served = serve_all(&server, ds, &order);
        server.shutdown();
        assert_eq!(
            &served, offline,
            "bundle-served != offline for executor {executor:?}"
        );
    }
}

#[test]
fn singleton_requests_match_offline() {
    // One request at a time (the server idles between them): every flush
    // is a batch of one, the opposite extreme from the full-batch path.
    let (ds, tuned, offline) = fixture();
    let registry = ModelRegistry::from_tuned(tuned, Executor::Eager, "fixture");
    let server = Server::start(registry, BatchPolicy::default());
    for (i, sample) in ds.test.samples.iter().take(8).enumerate() {
        let resp = server.classify(sample.vars.clone()).expect("classify");
        assert_eq!(resp.class, offline[i], "sample {i}");
        assert_eq!(resp.batch_size, 1);
    }
    server.shutdown();
}
