//! Integration tests spanning the whole workspace: the complete AimTS
//! pre-train → checkpoint → fine-tune → predict pipeline, ablations, and
//! determinism guarantees.

use aimts_repro::aimts::config::Ablation;
use aimts_repro::aimts::{AimTs, AimTsConfig, FineTuneConfig, PretrainConfig};
use aimts_repro::aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
use aimts_repro::aimts_data::MultiSeries;

fn tiny_pool(n: usize) -> Vec<MultiSeries> {
    monash_like_pool(2, 0).into_iter().take(n).collect()
}

fn tiny_pcfg() -> PretrainConfig {
    PretrainConfig {
        epochs: 1,
        batch_size: 4,
        lr: 1e-3,
        ..PretrainConfig::default()
    }
}

#[test]
fn full_pipeline_pretrain_save_load_finetune_predict() {
    let mut model = AimTs::new(AimTsConfig::tiny(), 3407);
    let report = model
        .pretrain(&tiny_pool(12), &tiny_pcfg())
        .expect("pre-training failed");
    assert!(
        report.health.is_clean(),
        "clean run must report no anomalies"
    );
    assert!(report.final_loss.is_finite());

    // Checkpoint round-trip.
    let dir = std::env::temp_dir().join("aimts_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("pretrained.json");
    model.save(&ckpt).unwrap();
    let mut restored = AimTs::new(AimTsConfig::tiny(), 999);
    restored.load(&ckpt).unwrap();

    // Fine-tune the restored model; the pipeline must be identical to
    // fine-tuning the original (same seeds everywhere).
    let ds = &ucr_like_archive(1, 7)[0];
    let fcfg = FineTuneConfig {
        epochs: 3,
        batch_size: 8,
        ..FineTuneConfig::default()
    };
    let acc_restored = restored.fine_tune(ds, &fcfg).evaluate(&ds.test);
    let acc_original = model.fine_tune(ds, &fcfg).evaluate(&ds.test);
    assert_eq!(
        acc_restored, acc_original,
        "restored model must behave identically"
    );

    // Predictions are valid class indices for every test sample.
    let tuned = restored.fine_tune(ds, &fcfg);
    let preds = tuned.predict(&ds.test);
    assert_eq!(preds.len(), ds.test.len());
    assert!(preds.iter().all(|&p| p < ds.n_classes));
}

#[test]
fn pretraining_is_deterministic_per_seed() {
    let pool = tiny_pool(8);
    let run = || {
        let mut m = AimTs::new(AimTsConfig::tiny(), 3407);
        m.pretrain(&pool, &tiny_pcfg())
            .expect("pre-training failed");
        m.named_parameters()[0].1.to_vec()
    };
    assert_eq!(run(), run(), "same seed must give bit-identical training");
}

#[test]
fn different_seeds_give_different_models() {
    let pool = tiny_pool(8);
    let run = |seed: u64| {
        let mut m = AimTs::new(AimTsConfig::tiny(), seed);
        m.pretrain(&pool, &tiny_pcfg())
            .expect("pre-training failed");
        m.named_parameters()[0].1.to_vec()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn all_ablation_variants_train_and_finetune() {
    let pool = tiny_pool(8);
    let ds = &ucr_like_archive(1, 3)[0];
    for ablation in [
        Ablation::inter_only(),
        Ablation::proto_only(),
        Ablation::si_naive_only(),
        Ablation::si_only(),
        Ablation::default(),
    ] {
        let cfg = AimTsConfig {
            ablation,
            ..AimTsConfig::tiny()
        };
        let mut model = AimTs::new(cfg, 5);
        let report = model
            .pretrain(&pool, &tiny_pcfg())
            .expect("pre-training failed");
        assert!(report.final_loss.is_finite(), "{ablation:?} diverged");
        let acc = model
            .fine_tune(
                ds,
                &FineTuneConfig {
                    epochs: 2,
                    ..FineTuneConfig::default()
                },
            )
            .evaluate(&ds.test);
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn multivariate_downstream_works_end_to_end() {
    let mut model = AimTs::new(AimTsConfig::tiny(), 11);
    model
        .pretrain(&tiny_pool(8), &tiny_pcfg())
        .expect("pre-training failed");
    let ds = &uea_like_archive(1, 5)[0];
    assert!(ds.n_vars() >= 2);
    let tuned = model.fine_tune(
        ds,
        &FineTuneConfig {
            epochs: 3,
            ..FineTuneConfig::default()
        },
    );
    let acc = tuned.evaluate(&ds.test);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn mixed_pool_with_heterogeneous_shapes_pretrains() {
    // The pool mixes univariate/multivariate samples of different lengths;
    // the model must handle all of them in one pretraining call.
    let pool = monash_like_pool(2, 1);
    let n_vars: std::collections::HashSet<usize> = pool.iter().map(|s| s.len()).collect();
    assert!(n_vars.len() >= 2, "pool should mix variable counts");
    let mut model = AimTs::new(AimTsConfig::tiny(), 13);
    let report = model
        .pretrain(&pool[..30.min(pool.len())], &tiny_pcfg())
        .expect("pre-training failed");
    assert!(report.final_loss.is_finite());
}

#[test]
fn encoder_representations_have_expected_shape_across_lengths() {
    let model = AimTs::new(AimTsConfig::tiny(), 17);
    for len in [16usize, 50, 128] {
        let s: MultiSeries = vec![(0..len).map(|i| (i as f32 * 0.1).sin()).collect()];
        let r = model.encode(&[&s]);
        assert_eq!(r.shape(), &[1, model.cfg.repr_dim], "length {len}");
    }
}
