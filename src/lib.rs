//! Umbrella crate for the AimTS reproduction workspace.
//!
//! This crate re-exports every sub-crate under a single namespace so that
//! examples and downstream users can depend on one crate:
//!
//! ```
//! use aimts_repro::prelude::*;
//! let archive = ucr_like_archive(2, 7);
//! assert_eq!(archive.len(), 2);
//! ```
//!
//! See [`aimts`] for the paper's core framework, [`aimts_data`] for the
//! synthetic archives, and [`aimts_baselines`] for comparison methods.

pub use aimts;
pub use aimts_augment;
pub use aimts_baselines;
pub use aimts_data;
pub use aimts_eval;
pub use aimts_imaging;
pub use aimts_nn;
pub use aimts_tensor;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use aimts::{
        AimTs, AimTsConfig, FineTuneConfig, FineTuned, PretrainConfig, PretrainReport,
    };
    pub use aimts_data::archives::{monash_like_pool, ucr_like_archive, uea_like_archive};
    pub use aimts_data::{Dataset, Split};
    pub use aimts_eval::accuracy;
    pub use aimts_tensor::Tensor;
}
